"""In-process metrics registry: counters, gauges and bucketed histograms.

The serving-side companion to :mod:`repro.obs.trace`: traces answer
"where did *this* request go", metrics answer "what is the fleet doing" —
request totals, latency percentiles, anomaly rates — cheap enough to keep
on permanently and scrape periodically.

Design constraints:

* zero dependencies (stdlib only), safe under threads (one registry
  lock for creation, one lock per instrument for updates);
* **off by default**: the recording helpers (:func:`metrics_enabled`,
  :func:`timed`) make disabled instrumentation a flag check, so the hot
  path carries no cost until someone opts in;
* fixed-bucket histograms: quantiles (p50/p95/p99) are interpolated from
  bucket counts, exactly like a Prometheus server would, so the text
  export (:meth:`MetricsRegistry.render_prometheus`) and the in-process
  :meth:`~MetricsRegistry.snapshot` agree.
"""

from __future__ import annotations

import time
from bisect import bisect_left
from typing import Optional, Sequence

from repro.analysis.sanitizer import guarded_by, make_lock, note_access
from repro.errors import ReproError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "get_registry",
    "reset_metrics",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "timed",
]

#: Default histogram buckets (seconds), exponential from 50us to 60s —
#: sized for this package's predict (~100us-10ms) and fit (~0.1-60s)
#: latencies.  Upper bounds; an implicit +Inf bucket catches the rest.
DEFAULT_LATENCY_BUCKETS: tuple[float, ...] = (
    5e-5, 1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
    0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
)

_ENABLED = False


def enable_metrics() -> None:
    """Turn metric recording on (process-wide)."""
    global _ENABLED
    _ENABLED = True


def disable_metrics() -> None:
    """Turn metric recording off; accumulated values are kept."""
    global _ENABLED
    _ENABLED = False


def metrics_enabled() -> bool:
    """Whether instrumented code is currently recording metrics."""
    return _ENABLED


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "help", "_value", "_lock")
    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = make_lock("obs.metrics.counter")

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ReproError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self._value}


class Gauge:
    """A value that can go up and down (window sizes, accuracy rates)."""

    __slots__ = ("name", "help", "_value", "_lock")
    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._value = 0.0
        self._lock = make_lock("obs.metrics.gauge")

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def snapshot(self) -> dict:
        return {"type": self.kind, "value": self._value}


class Histogram:
    """Fixed-bucket histogram with interpolated quantiles.

    Args:
        name: metric name (``repro_predict_seconds``).
        buckets: ascending upper bounds; an implicit +Inf bucket is
            appended.  Defaults to :data:`DEFAULT_LATENCY_BUCKETS`.
    """

    __slots__ = (
        "name", "help", "buckets", "_counts", "_sum", "_count",
        "_min", "_max", "_lock",
    )
    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        bounds = tuple(buckets if buckets is not None else DEFAULT_LATENCY_BUCKETS)
        if not bounds or list(bounds) != sorted(bounds):
            raise ReproError(
                f"histogram {name} buckets must be ascending and non-empty"
            )
        self.name = name
        self.help = help
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # +1 for the +Inf bucket
        self._sum = 0.0
        self._count = 0
        self._min = float("inf")
        self._max = float("-inf")
        self._lock = make_lock("obs.metrics.histogram")

    def observe(self, value: float) -> None:
        value = float(value)
        index = bisect_left(self.buckets, value)
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile, linearly interpolated in its bucket.

        Bucket-resolution estimate (like Prometheus ``histogram_quantile``):
        exact only up to bucket width.  Returns NaN with no observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ReproError("quantile must be in [0, 1]")
        with self._lock:
            count = self._count
            counts = list(self._counts)
            lo_seen, hi_seen = self._min, self._max
        if count == 0:
            return float("nan")
        target = q * count
        cumulative = 0.0
        for index, bucket_count in enumerate(counts):
            if bucket_count == 0:
                continue
            if cumulative + bucket_count >= target:
                # Interpolate within this bucket's [lower, upper) range,
                # clamped to actually-observed values at the extremes.
                lower = self.buckets[index - 1] if index > 0 else lo_seen
                upper = (
                    self.buckets[index]
                    if index < len(self.buckets)
                    else hi_seen
                )
                lower = max(lower, lo_seen)
                upper = min(upper, hi_seen) if upper >= lower else lower
                fraction = (target - cumulative) / bucket_count
                return lower + (upper - lower) * min(max(fraction, 0.0), 1.0)
            cumulative += bucket_count
        return hi_seen  # pragma: no cover - q == 1 handled above

    def percentiles(self) -> dict:
        """The conventional p50/p95/p99 summary."""
        return {
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def snapshot(self) -> dict:
        with self._lock:
            payload = {
                "type": self.kind,
                "count": self._count,
                "sum": self._sum,
                "min": self._min if self._count else None,
                "max": self._max if self._count else None,
                "buckets": {
                    str(bound): count
                    for bound, count in zip(self.buckets, self._counts)
                },
                "inf": self._counts[-1],
            }
        payload.update(self.percentiles())
        return payload


class MetricsRegistry:
    """Named instruments, created on first use and shared thereafter.

    ``counter()``/``gauge()``/``histogram()`` are get-or-create: the same
    name always returns the same instrument, and asking for a name under
    a different type raises :class:`~repro.errors.ReproError` (a silent
    type change would corrupt dashboards).
    """

    def __init__(self) -> None:
        self._metrics: dict[str, object] = {}
        self._lock = make_lock("obs.metrics.registry")
        guarded_by("obs.metrics.registry", self._lock)

    def _get_or_create(self, name: str, factory, kind: str):
        with self._lock:
            note_access("obs.metrics.registry")
            existing = self._metrics.get(name)
            if existing is not None:
                if existing.kind != kind:
                    raise ReproError(
                        f"metric {name!r} already registered as "
                        f"{existing.kind}, not {kind}"
                    )
                return existing
            metric = factory()
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "") -> Counter:
        return self._get_or_create(
            name, lambda: Counter(name, help), Counter.kind
        )

    def gauge(self, name: str, help: str = "") -> Gauge:
        return self._get_or_create(name, lambda: Gauge(name, help), Gauge.kind)

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: Optional[Sequence[float]] = None,
    ) -> Histogram:
        return self._get_or_create(
            name, lambda: Histogram(name, help, buckets), Histogram.kind
        )

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._metrics)

    def snapshot(self) -> dict:
        """``{name: instrument.snapshot()}`` for every instrument."""
        with self._lock:
            metrics = list(self._metrics.items())
        return {name: metric.snapshot() for name, metric in sorted(metrics)}

    def render_prometheus(self) -> str:
        """Prometheus text exposition format (counters get ``_total``)."""
        lines: list[str] = []
        with self._lock:
            metrics = sorted(self._metrics.items())
        for name, metric in metrics:
            if metric.help:
                lines.append(f"# HELP {name} {metric.help}")
            lines.append(f"# TYPE {name} {metric.kind}")
            if isinstance(metric, Histogram):
                snap = metric.snapshot()
                cumulative = 0
                for bound in metric.buckets:
                    cumulative += snap["buckets"][str(bound)]
                    lines.append(
                        f'{name}_bucket{{le="{bound:g}"}} {cumulative}'
                    )
                cumulative += snap["inf"]
                lines.append(f'{name}_bucket{{le="+Inf"}} {cumulative}')
                lines.append(f"{name}_sum {snap['sum']:.9g}")
                lines.append(f"{name}_count {snap['count']}")
            else:
                lines.append(f"{name} {metric.value:.9g}")
        return "\n".join(lines) + ("\n" if lines else "")

    def reset(self) -> None:
        """Drop every instrument (test helper)."""
        with self._lock:
            note_access("obs.metrics.registry")
            self._metrics.clear()


#: The process-wide default registry every instrumented call site uses.
_REGISTRY = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-wide default registry."""
    return _REGISTRY


def reset_metrics() -> None:
    """Clear the default registry (test helper)."""
    _REGISTRY.reset()
    with _TIMED_CACHE_LOCK:
        _TIMED_CACHE.clear()


class _Timed:
    """Times a block into pre-resolved instruments when enabled.

    ``slot`` is the shared ``[histogram, counter]`` cache entry for this
    name pair.  The histogram is resolved up front (it always records);
    the counter stays lazy — it must not exist in the registry until a
    block actually succeeds — and is memoized into the slot on first
    success.
    """

    __slots__ = ("slot", "counter_name", "count", "_start")

    def __init__(
        self,
        slot: "list",
        counter_name: Optional[str],
        count: int,
    ) -> None:
        self.slot = slot
        self.counter_name = counter_name
        self.count = count
        self._start = 0.0

    def __enter__(self) -> "_Timed":
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        elapsed = time.perf_counter() - self._start
        self.slot[0].observe(elapsed)
        if self.counter_name is not None and exc_type is None:
            counter = self.slot[1]
            if counter is None:
                # Get-or-create is idempotent under the registry lock,
                # so concurrent first successes resolve the same
                # Counter; the memo write is guarded all the same.
                counter = _REGISTRY.counter(self.counter_name)
                with _TIMED_CACHE_LOCK:
                    if self.slot[1] is None:
                        self.slot[1] = counter
            counter.inc(self.count)
        return False


class _NoopTimed:
    __slots__ = ()

    def __enter__(self) -> "_NoopTimed":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


_NOOP_TIMED = _NoopTimed()

#: Instrument pairs resolved once per (histogram, counter) name pair.
#: Every registry lookup takes the registry lock plus a dict probe; on
#: the batch-predict hot path that happened twice per ``timed()`` exit.
#: Resolving here also fixes the histogram's bucket bounds up front, so
#: ``observe`` goes straight to ``bisect``.  Cleared by
#: :func:`reset_metrics`, which is the only way instruments are dropped.
_TIMED_CACHE: dict[tuple[str, Optional[str]], list] = {}

#: Guards the cache's check-then-insert: two threads hitting the same
#: call site for the first time used to race it and hand out distinct
#: slot lists (PR 7); double-checked insertion under this lock keeps
#: first-call initialization idempotent.  The instruments themselves
#: are already idempotent (registry get-or-create under its own lock).
_TIMED_CACHE_LOCK = make_lock("obs.metrics.timed_cache")


def timed(
    histogram_name: str,
    counter_name: Optional[str] = None,
    count: int = 1,
):
    """Context manager: record the block's latency (seconds) into
    ``histogram_name`` and, on success, add ``count`` to ``counter_name``.

    A shared no-op while metrics are disabled — safe to leave in the hot
    path permanently.
    """
    if not _ENABLED:
        return _NOOP_TIMED
    key = (histogram_name, counter_name)
    slot = _TIMED_CACHE.get(key)
    if slot is None:
        # Resolve the histogram before taking the cache lock: the
        # registry has its own lock and nesting the two in one order
        # here and the other elsewhere would invert (CC101).
        histogram = _REGISTRY.histogram(histogram_name)
        with _TIMED_CACHE_LOCK:
            slot = _TIMED_CACHE.get(key)
            if slot is None:
                slot = [histogram, None]
                _TIMED_CACHE[key] = slot
    return _Timed(slot, counter_name, count)
