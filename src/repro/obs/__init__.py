"""Observability for the train/serve path: tracing, metrics, drift.

Three zero-dependency building blocks (see docs/OBSERVABILITY.md):

* :mod:`repro.obs.trace` — nestable :func:`span` context managers
  recording wall/CPU time and attributes into a thread-local trace tree,
  exportable as JSON and mergeable across worker processes;
* :mod:`repro.obs.metrics` — a process-wide registry of named counters,
  gauges and fixed-bucket histograms with :func:`metrics_snapshot` and a
  Prometheus text export;
* :mod:`repro.obs.drift` — :class:`DriftMonitor`, tracking the paper's
  within-20 %-relative-error fraction over a sliding window of live
  (predicted, actual) pairs and flagging degradation.

Everything is **disabled by default**: the instrumented hot path costs a
flag check per call site until :func:`enable_tracing` /
:func:`enable_metrics` opt in, so observability can ship inside the
production code rather than bolted onto benchmarks.
"""

from repro.obs.drift import DriftMonitor, relative_errors
from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    disable_metrics,
    enable_metrics,
    get_registry,
    metrics_enabled,
    reset_metrics,
    timed,
)
from repro.obs.trace import (
    Span,
    attach_spans,
    disable_tracing,
    drain_trace,
    enable_tracing,
    export_trace,
    pretty_trace,
    reset_trace,
    span,
    trace_roots,
    tracing_enabled,
)

__all__ = [
    # tracing
    "Span",
    "span",
    "enable_tracing",
    "disable_tracing",
    "tracing_enabled",
    "trace_roots",
    "drain_trace",
    "export_trace",
    "attach_spans",
    "pretty_trace",
    "reset_trace",
    # metrics
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_LATENCY_BUCKETS",
    "get_registry",
    "metrics_snapshot",
    "reset_metrics",
    "enable_metrics",
    "disable_metrics",
    "metrics_enabled",
    "timed",
    # drift
    "DriftMonitor",
    "relative_errors",
]


def metrics_snapshot() -> dict:
    """Snapshot of the default registry (``{name: state}``)."""
    return get_registry().snapshot()
