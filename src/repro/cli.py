"""Command-line interface: explain, predict and measure queries.

Usage (after ``pip install -e .``)::

    python -m repro explain "SELECT count(*) FROM store_sales ss"
    python -m repro predict --queries 200 "SELECT ..."
    python -m repro plan "SELECT ..."
    python -m repro pools --queries 300

Commands:

* ``plan``    — print the optimizer's physical plan with estimates;
* ``predict`` — train on a generated workload, print the forecast;
* ``explain`` — like predict, plus confidence and optimizer cost;
* ``measure`` — actually run the query on the simulated system;
* ``pools``   — run a workload and print the Figure 2 pool table.

All commands build a deterministic TPC-DS-like database (``--scale``,
``--seed``), so output is reproducible.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.api import QueryPerformancePredictor
from repro.engine import Executor
from repro.engine.system import production_32node, research_4node
from repro.errors import ReproError
from repro.optimizer import Optimizer
from repro.workloads.tpcds import build_tpcds_catalog

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Predict query performance before execution (ICDE'09).",
    )
    parser.add_argument(
        "--scale", type=float, default=0.2,
        help="TPC-DS-like scale factor (default 0.2)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="generation seed (default 7)"
    )
    parser.add_argument(
        "--system", choices=["research", "prod4", "prod8", "prod16", "prod32"],
        default="research", help="system configuration (default research)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    plan = sub.add_parser("plan", help="show the optimizer's physical plan")
    plan.add_argument("sql")

    for name, help_text in (
        ("predict", "train a model and forecast the query"),
        ("explain", "forecast with confidence and optimizer cost"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("sql")
        cmd.add_argument(
            "--queries", type=int, default=200,
            help="training workload size (default 200)",
        )
        cmd.add_argument(
            "--two-step", action="store_true",
            help="use type-specific two-step models",
        )

    measure = sub.add_parser("measure", help="run the query (ground truth)")
    measure.add_argument("sql")

    pools = sub.add_parser("pools", help="categorise a generated workload")
    pools.add_argument(
        "--queries", type=int, default=200, help="workload size"
    )
    return parser


def _config(name: str):
    if name == "research":
        return research_4node()
    return production_32node(int(name.removeprefix("prod")))


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    config = _config(args.system)
    try:
        if args.command == "plan":
            catalog = build_tpcds_catalog(args.scale, args.seed)
            optimized = Optimizer(catalog, config).optimize(args.sql)
            print(optimized.plan.pretty())
            print(f"\nestimated rows : {optimized.estimated_rows:,.0f}")
            print(f"optimizer cost : {optimized.cost:,.1f} (abstract units)")
            return 0
        if args.command == "measure":
            catalog = build_tpcds_catalog(args.scale, args.seed)
            optimized = Optimizer(catalog, config).optimize(args.sql)
            metrics = Executor(catalog, config).execute(optimized.plan).metrics
            print(f"elapsed time     : {metrics.elapsed_time:.2f}s")
            print(f"records accessed : {metrics.records_accessed:,}")
            print(f"records used     : {metrics.records_used:,}")
            print(f"disk I/Os        : {metrics.disk_ios:,}")
            print(f"message count    : {metrics.message_count:,}")
            print(f"message bytes    : {metrics.message_bytes:,}")
            return 0
        if args.command in ("predict", "explain"):
            predictor = QueryPerformancePredictor.train_on_tpcds(
                n_queries=args.queries,
                scale_factor=args.scale,
                seed=args.seed,
                config=config,
                two_step=args.two_step,
            )
            if args.command == "explain":
                print(predictor.explain(args.sql))
            else:
                metrics = predictor.predict(args.sql)
                print(f"predicted elapsed time : {metrics.elapsed_time:.2f}s")
                print(f"predicted records used : {metrics.records_used:,}")
                print(f"predicted disk I/Os    : {metrics.disk_ios:,}")
            return 0
        if args.command == "pools":
            from repro.experiments.corpus import build_corpus
            from repro.experiments.experiments import fig2_query_pools
            from repro.experiments.report import format_pool_table
            from repro.workloads.generator import generate_pool

            catalog = build_tpcds_catalog(args.scale, args.seed)
            pool = generate_pool(args.queries, seed=args.seed)
            corpus = build_corpus(catalog, config, pool)
            print(format_pool_table(fig2_query_pools(corpus)))
            return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
