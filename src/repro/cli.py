"""Command-line interface: train, persist, predict and measure queries.

Usage (after ``pip install -e .``)::

    python -m repro train --save model.npz --queries 300
    python -m repro predict --model model.npz "SELECT ..."
    python -m repro forecast --model model.npz --batch workload.sql
    python -m repro explain "SELECT count(*) FROM store_sales ss"
    python -m repro plan "SELECT ..."
    python -m repro pools --queries 300

Commands:

* ``train``    — train a predictor and save it as a versioned artifact;
* ``plan``     — print the optimizer's physical plan with estimates;
* ``predict``  — forecast one query (from ``--model`` or by training);
* ``explain``  — like predict, plus confidence and optimizer cost;
* ``forecast`` — batch forecasts for many statements in one model pass;
* ``lint``     — plan-lint statements without executing or predicting
  (see docs/STATIC_ANALYSIS.md; exit 1 when any warning fires);
* ``measure``  — actually run the query on the simulated system;
* ``pools``    — run a workload and print the Figure 2 pool table;
* ``metrics``  — print the process metrics registry (with ``--demo``
  to populate it first);
* ``serve``    — run the long-lived prediction daemon: HTTP/JSON,
  micro-batched forecasts, prediction-driven admission control, hot
  reload on SIGHUP; ``--supervised`` adds crash recovery on a shared
  socket, ``--degrade`` the tiered degradation ladder, and
  ``--default-deadline-ms`` end-to-end deadline budgets
  (see docs/SERVING.md);
* ``workload`` — inspect declarative workload specs:
  ``validate`` (schema + vocabulary checks, exit 1 on errors),
  ``describe`` (families, weights, templates) and ``sample``
  (print generated query instances).

All commands build the selected workload's database deterministically
(``--workload``, ``--scale``, ``--seed``), so output is reproducible.
Parallel training builds (``--jobs N``) share the catalog with workers
through a shared-memory data plane; ``--chunk-size`` tunes queries per
worker task and ``--warm-pool`` keeps the workers alive across builds
within one invocation (see docs/PERFORMANCE.md).
``--workload`` accepts a built-in spec name (``tpcds``, ``oltp``,
``analytics``, ``tpcds_skew``, ``customer``) or a path to a spec file
(see docs/WORKLOADS.md).  Within one process, trained services are
cached, so repeated :func:`main` calls (tests, notebooks) don't retrain
for every subcommand.

Observability: the global ``--trace-out FILE`` flag enables hot-path
tracing for any command and writes the resulting span tree as JSON
(``-`` for a pretty rendering on stderr); ``--metrics`` turns on the
metrics registry and dumps it after the command.  See
docs/OBSERVABILITY.md.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path
from typing import Optional, Sequence

from repro import obs
from repro.api import QueryPerformancePredictor, resolve_artifact
from repro.engine import Executor
from repro.engine.system import production_32node, research_4node
from repro.errors import ReproError, WorkloadSpecError
from repro.optimizer import Optimizer
from repro.workloads.spec import (
    build_catalog_for,
    describe_workload,
    load_workload_spec,
    resolve_workload,
)

__all__ = ["main", "build_parser"]

#: Trained services keyed by (workload, scale, seed, system, queries,
#: two_step, fallback) so one process invoking several subcommands trains
#: at most once per setup.
_service_cache: dict[tuple, QueryPerformancePredictor] = {}

_NO_ARTIFACT_HINT = (
    "hint: no --model artifact given; training a fresh model for this "
    "call. Train once with `repro train --save model.npz` and reuse it "
    "via `--model model.npz`."
)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Predict query performance before execution (ICDE'09).",
    )
    parser.add_argument(
        "--scale", type=float, default=0.2,
        help="TPC-DS-like scale factor (default 0.2)",
    )
    parser.add_argument(
        "--seed", type=int, default=7, help="generation seed (default 7)"
    )
    parser.add_argument(
        "--workload", default="tpcds", metavar="NAME_OR_PATH",
        help="workload spec: a built-in name (tpcds, oltp, analytics, "
             "tpcds_skew, customer) or a path to a spec file "
             "(default tpcds; see docs/WORKLOADS.md)",
    )
    parser.add_argument(
        "--system", choices=["research", "prod4", "prod8", "prod16", "prod32"],
        default="research", help="system configuration (default research)",
    )
    parser.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for training-workload execution "
             "(default serial, -1 = one per CPU); results are bitwise "
             "identical to a serial run",
    )
    parser.add_argument(
        "--chunk-size", type=int, default=None, metavar="Q",
        help="queries per worker task in parallel builds (default: "
             "~8 chunks per worker); raise to amortise task overhead, "
             "lower for heavily skewed runtimes",
    )
    parser.add_argument(
        "--warm-pool", action="store_true",
        help="keep corpus-build workers and their shared-memory catalog "
             "planes alive across builds within this invocation (see "
             "docs/PERFORMANCE.md)",
    )
    parser.add_argument(
        "--trace-out", metavar="FILE", default=None,
        help="enable hot-path tracing and write the span tree as JSON "
             "to FILE ('-' prints a pretty tree to stderr instead)",
    )
    parser.add_argument(
        "--metrics", action="store_true",
        help="enable the metrics registry and print it (Prometheus text) "
             "to stderr after the command",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    train = sub.add_parser(
        "train", help="train a predictor and save the artifact"
    )
    train.add_argument(
        "--save", required=True, metavar="ARTIFACT",
        help="where to write the model artifact (.npz)",
    )
    train.add_argument(
        "--queries", type=int, default=200,
        help="training workload size (default 200)",
    )
    train.add_argument(
        "--two-step", action="store_true",
        help="use type-specific two-step models",
    )
    train.add_argument(
        "--fallback", action="store_true",
        help="serve through a degrading fallback chain (KCCA -> "
             "regression -> cost heuristic) with circuit breakers",
    )

    plan = sub.add_parser("plan", help="show the optimizer's physical plan")
    plan.add_argument("sql")

    for name, help_text in (
        ("predict", "forecast the query (train or load --model)"),
        ("explain", "forecast with confidence and optimizer cost"),
    ):
        cmd = sub.add_parser(name, help=help_text)
        cmd.add_argument("sql")
        cmd.add_argument(
            "--model", metavar="ARTIFACT",
            help="load a saved artifact instead of training",
        )
        cmd.add_argument(
            "--queries", type=int, default=200,
            help="training workload size (default 200)",
        )
        cmd.add_argument(
            "--two-step", action="store_true",
            help="use type-specific two-step models",
        )
        cmd.add_argument(
            "--fallback", action="store_true",
            help="serve through a degrading fallback chain",
        )

    forecast = sub.add_parser(
        "forecast", help="batch forecasts in one model pass"
    )
    forecast.add_argument(
        "sql", nargs="?",
        help="a SQL statement (or use --batch for a file)",
    )
    forecast.add_argument(
        "--model", metavar="ARTIFACT",
        help="load a saved artifact instead of training",
    )
    forecast.add_argument(
        "--batch", metavar="FILE",
        help="file of ';'-separated SQL statements",
    )
    forecast.add_argument(
        "--queries", type=int, default=200,
        help="training workload size when no --model (default 200)",
    )
    forecast.add_argument(
        "--two-step", action="store_true",
        help="use type-specific two-step models",
    )
    forecast.add_argument(
        "--fallback", action="store_true",
        help="serve through a degrading fallback chain; the output "
             "table gains a 'stage' column naming which model answered",
    )

    lint = sub.add_parser(
        "lint", help="plan-lint statements before running them"
    )
    lint.add_argument(
        "sql", nargs="*",
        help="SQL statements (';'-separated; or use --batch)",
    )
    lint.add_argument(
        "--batch", metavar="FILE",
        help="file of ';'-separated SQL statements",
    )
    lint.add_argument(
        "--model", metavar="ARTIFACT",
        help="trained artifact; adds the operator-vocabulary "
             "extrapolation check (PL005) against its training corpus",
    )
    lint.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output format (default text)",
    )
    lint.add_argument(
        "--concurrency", metavar="TREE", nargs="?", const="",
        default=None,
        help="run static Pack C (CC001-CC008) over a source tree "
             "instead of plan-linting SQL; TREE defaults to the "
             "installed repro package; exits 1 on any finding",
    )

    measure = sub.add_parser("measure", help="run the query (ground truth)")
    measure.add_argument("sql")

    pools = sub.add_parser("pools", help="categorise a generated workload")
    pools.add_argument(
        "--queries", type=int, default=200, help="workload size"
    )

    metrics = sub.add_parser(
        "metrics", help="print the process metrics registry"
    )
    metrics.add_argument(
        "--format", choices=["prom", "json"], default="prom",
        help="output format (default Prometheus text)",
    )
    metrics.add_argument(
        "--demo", action="store_true",
        help="train a small model and score a few queries first so the "
             "registry has something to show",
    )

    serve = sub.add_parser(
        "serve", help="run the prediction serving daemon (docs/SERVING.md)"
    )
    serve.add_argument(
        "--model", metavar="ARTIFACT",
        help="model artifact to serve (hot-reloadable via SIGHUP or "
             "/admin/reload); omit to train an in-memory model first",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default loopback)"
    )
    serve.add_argument(
        "--port", type=int, default=8765,
        help="bind port; 0 picks an ephemeral port (default 8765)",
    )
    serve.add_argument(
        "--max-batch", type=int, default=32,
        help="micro-batch size cap (default 32)",
    )
    serve.add_argument(
        "--max-wait-ms", type=float, default=2.0,
        help="micro-batch collection window in ms (default 2.0)",
    )
    serve.add_argument(
        "--max-queue", type=int, default=512,
        help="queued-statement cap before shedding 503s (default 512)",
    )
    serve.add_argument(
        "--quota-rate", type=float, default=None, metavar="PRED_S_PER_S",
        help="per-client admission quota in predicted seconds of query "
             "work per wall second (default: quotas off)",
    )
    serve.add_argument(
        "--quota-burst", type=float, default=None,
        help="per-client quota burst (default 60x the rate)",
    )
    serve.add_argument(
        "--heavy-seconds", type=float, default=None,
        help="predicted elapsed time above which a query is a bowling "
             "ball eligible for shedding under load (default: off)",
    )
    serve.add_argument(
        "--shed-inflight", type=int, default=32,
        help="shed bowling balls while more requests than this are in "
             "flight (default 32)",
    )
    serve.add_argument(
        "--slo-p99-ms", type=float, default=None,
        help="p99 latency target reported at /admin/status",
    )
    serve.add_argument(
        "--queries", type=int, default=200,
        help="training workload size when no --model (default 200)",
    )
    serve.add_argument(
        "--two-step", action="store_true",
        help="use type-specific two-step models when training in-memory",
    )
    serve.add_argument(
        "--fallback", action="store_true",
        help="serve through a degrading fallback chain",
    )
    serve.add_argument(
        "--default-deadline-ms", type=float, default=None,
        help="deadline budget for requests that carry none; spent "
             "budgets answer 504 (default: unbounded)",
    )
    serve.add_argument(
        "--degrade", action="store_true",
        help="enable the tiered degradation ladder (step service "
             "quality down under sustained pressure, back up when calm)",
    )
    serve.add_argument(
        "--degrade-force-tier", type=int, default=None, metavar="TIER",
        help="pin the degradation ladder to one tier 0..3 (testing)",
    )
    serve.add_argument(
        "--stale-cache-size", type=int, default=256,
        help="bound on the tier-3 stale-prediction cache (default 256)",
    )
    serve.add_argument(
        "--supervised", action="store_true",
        help="run the daemon as a supervised child: crash -> restart "
             "with backoff on the same socket, crash loops give up "
             "with a journal (docs/SERVING.md)",
    )
    serve.add_argument(
        "--max-restarts", type=int, default=5,
        help="supervised restarts tolerated per window before giving "
             "up (default 5)",
    )
    serve.add_argument(
        "--restart-window-s", type=float, default=30.0,
        help="crash-loop detection window in seconds (default 30)",
    )
    serve.add_argument(
        "--crash-journal", metavar="PATH", default=None,
        help="JSONL crash journal the supervisor appends spawn/exit/"
             "restart/give-up events to",
    )

    workload = sub.add_parser(
        "workload", help="validate, describe or sample workload specs"
    )
    wsub = workload.add_subparsers(dest="workload_command", required=True)
    validate = wsub.add_parser(
        "validate",
        help="check spec files (schema, strategies, SQL vocabulary); "
             "exit 1 on errors",
    )
    validate.add_argument(
        "paths", nargs="+", metavar="PATH",
        help="spec files or directories of specs (*.yaml, *.yml, *.json)",
    )
    describe = wsub.add_parser(
        "describe", help="print families, mix weights and templates"
    )
    describe.add_argument(
        "ref", nargs="?", default=None, metavar="NAME_OR_PATH",
        help="workload to describe (default: the global --workload)",
    )
    sample = wsub.add_parser(
        "sample", help="print generated query instances from a spec"
    )
    sample.add_argument(
        "ref", nargs="?", default=None, metavar="NAME_OR_PATH",
        help="workload to sample (default: the global --workload)",
    )
    sample.add_argument(
        "--queries", type=int, default=10,
        help="number of instances to generate (default 10)",
    )
    return parser


def _config(name: str):
    if name == "research":
        return research_4node()
    return production_32node(int(name.removeprefix("prod")))


def _catalog(args):
    """The database catalog for the selected ``--workload``."""
    spec = resolve_workload(args.workload).spec
    return build_catalog_for(spec, scale=args.scale, seed=args.seed)


def _service(args, config) -> QueryPerformancePredictor:
    """A trained service: loaded from ``--model``, cached, or trained."""
    artifact = getattr(args, "model", None)
    if artifact:
        # Fingerprint-validated: a retrain that overwrote the file is
        # picked up instead of serving the stale cached model.
        return resolve_artifact(Path(artifact))[1]
    print(_NO_ARTIFACT_HINT, file=sys.stderr)
    fallback = getattr(args, "fallback", False)
    key = (args.workload, args.scale, args.seed, args.system, args.queries,
           args.two_step, fallback)
    if key not in _service_cache:
        # The CLI process is single-threaded; the cache cannot race.
        _service_cache[key] = QueryPerformancePredictor.train_on_workload(  # repro: allow[CC003]
            args.workload,
            n_queries=args.queries,
            scale=args.scale,
            seed=args.seed,
            config=config,
            two_step=args.two_step,
            fallback=fallback,
            jobs=args.jobs,
            chunk_size=args.chunk_size,
        )
    return _service_cache[key]


def _split_statements(text: str) -> list[str]:
    return [part.strip() for part in text.split(";") if part.strip()]


def _write_trace(destination: str) -> None:
    """Dump the recorded trace: pretty to stderr for ``-``, else JSON."""
    if destination == "-":
        rendering = obs.pretty_trace()
        if rendering:
            print(rendering, file=sys.stderr)
        obs.drain_trace()
        return
    payload = obs.export_trace(drain=True)
    Path(destination).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"trace written to {destination}", file=sys.stderr)


def _concurrency_lint_command(args) -> int:
    """``repro lint --concurrency``: static Pack C over a source tree."""
    from repro.analysis.concurrency import CONCURRENCY_RULES
    from repro.analysis.engine import findings_to_report, lint_package

    if args.concurrency:
        package_root = Path(args.concurrency)
    else:
        import repro

        package_root = Path(repro.__file__).resolve().parent
    if not package_root.is_dir():
        print(f"error: {package_root} is not a directory", file=sys.stderr)
        return 2
    findings = lint_package(package_root, rules=CONCURRENCY_RULES)
    if args.format == "json":
        print(json.dumps(findings_to_report(findings), indent=2))
    else:
        for finding in findings:
            print(finding.render())
        label = "clean" if not findings else f"{len(findings)} finding(s)"
        print(f"concurrency lint ({package_root}): {label}")
    return 1 if findings else 0


def _lint_command(args, config) -> int:
    """``repro lint``: plan-lint statements; exit 1 when warnings fire."""
    from repro.analysis.findings import LINT_SCHEMA_VERSION
    from repro.analysis.planlint import vocabulary_warnings

    if args.concurrency is not None:
        return _concurrency_lint_command(args)
    statements: list[str] = []
    for chunk in args.sql:
        statements.extend(_split_statements(chunk))
    if args.batch:
        statements.extend(_split_statements(Path(args.batch).read_text()))
    if not statements:
        print("error: lint needs SQL arguments or --batch FILE",
              file=sys.stderr)
        return 2
    vocabulary = None
    if args.model:
        service = resolve_artifact(Path(args.model))[1]
        optimizer = service.optimizer
        vocabulary = service.pipeline.metadata.get("operator_vocabulary")
    else:
        optimizer = Optimizer(_catalog(args), config)
    results = []
    total = 0
    for sql in statements:
        optimized = optimizer.optimize(sql)
        warnings = list(optimized.warnings)
        if vocabulary:
            warnings.extend(vocabulary_warnings(optimized.plan, vocabulary))
        results.append((sql, warnings))
        total += len(warnings)
    if args.format == "json":
        payload = {
            "schema_version": LINT_SCHEMA_VERSION,
            "total_warnings": total,
            "statements": [
                {
                    "sql": sql,
                    "warnings": [w.as_dict() for w in warnings],
                }
                for sql, warnings in results
            ],
        }
        print(json.dumps(payload, indent=2))
    else:
        for index, (sql, warnings) in enumerate(results):
            label = "ok" if not warnings else f"{len(warnings)} warning(s)"
            print(f"-- statement {index}: {label}")
            for warning in warnings:
                print(f"   {warning.render()}")
    return 1 if total else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    config = _config(args.system)
    if args.trace_out:
        obs.enable_tracing()
    if args.metrics:
        obs.enable_metrics()
    if args.warm_pool:
        from repro.experiments.workerpool import enable_warm_pool

        enable_warm_pool()
    try:
        return _dispatch(args, config)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except BrokenPipeError:
        # Downstream pager/head closed the pipe; not an error.  Point
        # stdout at devnull so the interpreter's exit-time flush of the
        # dead pipe cannot raise a second time.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0
    finally:
        if args.warm_pool:
            from repro.experiments.workerpool import shutdown_warm_pool

            shutdown_warm_pool()
        if args.trace_out:
            _write_trace(args.trace_out)
        if args.metrics:
            text = obs.get_registry().render_prometheus()
            if text:
                print(text, file=sys.stderr, end="")


def _workload_command(args) -> int:
    """``repro workload validate|describe|sample``."""
    if args.workload_command == "validate":
        spec_paths: list[Path] = []
        for raw in args.paths:
            path = Path(raw)
            if path.is_dir():
                spec_paths.extend(
                    p for p in sorted(path.iterdir())
                    if p.suffix.lower() in (".yaml", ".yml", ".json")
                )
            else:
                spec_paths.append(path)
        if not spec_paths:
            print("error: no spec files found", file=sys.stderr)
            return 2
        failed = 0
        for path in spec_paths:
            try:
                spec = load_workload_spec(path)
            except WorkloadSpecError as error:
                failed += 1
                print(f"FAIL {path}")
                for message in (error.errors or (str(error),)):
                    print(f"     {message}")
                continue
            print(
                f"ok   {path}  ({spec.name}: {len(spec.templates)} "
                f"templates, {len(spec.families)} families, "
                f"{len(spec.tables)} tables)"
            )
        print(f"{len(spec_paths) - failed}/{len(spec_paths)} specs valid")
        return 1 if failed else 0
    ref = args.ref if args.ref is not None else args.workload
    if args.workload_command == "describe":
        print(describe_workload(ref))
        return 0
    # sample
    from repro.workloads.generator import generate_pool

    for query in generate_pool(args.queries, seed=args.seed, workload=ref):
        print(f"-- {query.query_id}  [{query.family}]")
        print(query.sql)
    return 0


def _serve_command(args, config) -> int:
    """``repro serve``: run the prediction daemon until interrupted."""
    import threading

    from repro.serve import (
        PredictionDaemon,
        ServeConfig,
        Supervisor,
        SupervisorConfig,
    )

    serve_config = ServeConfig(
        host=args.host,
        port=args.port,
        max_batch=args.max_batch,
        max_wait_ms=args.max_wait_ms,
        max_queue=args.max_queue,
        quota_rate=args.quota_rate,
        quota_burst=args.quota_burst,
        heavy_seconds=args.heavy_seconds,
        shed_inflight=args.shed_inflight,
        slo_p99_ms=args.slo_p99_ms,
        default_deadline_ms=args.default_deadline_ms,
        degrade=args.degrade,
        degrade_force_tier=args.degrade_force_tier,
        stale_cache_size=args.stale_cache_size,
    )

    def build_daemon() -> PredictionDaemon:
        if args.model:
            return PredictionDaemon(
                artifact=Path(args.model), config=serve_config
            )
        return PredictionDaemon(
            service=_service(args, config), config=serve_config
        )

    if args.supervised:
        supervisor = Supervisor(
            build_daemon,
            serve_config,
            SupervisorConfig(
                max_restarts=args.max_restarts,
                restart_window_s=args.restart_window_s,
                crash_journal=(
                    Path(args.crash_journal) if args.crash_journal else None
                ),
            ),
        )
        host, port = supervisor.start()
        # Handlers go in before the banner: anyone scripting the CLI
        # treats the banner as "ready", and ready must include "a
        # SIGTERM from here on drains instead of killing mid-batch".
        stop_event = threading.Event()
        _install_stop_handlers(stop_event)
        print(
            f"supervising on http://{host}:{port}  "
            f"(child pid {supervisor.child_pid})"
        )
        print(
            "crashes restart with backoff on the same socket; "
            f"> {args.max_restarts} restarts/"
            f"{args.restart_window_s:g}s gives up"
            + (f"; journal: {args.crash_journal}" if args.crash_journal else ""),
            file=sys.stderr,
        )
        try:
            stop_event.wait()
            print("stopping supervisor and child...", file=sys.stderr)
        except KeyboardInterrupt:
            print("stopping supervisor and child...", file=sys.stderr)
        finally:
            supervisor.stop()
        return 0

    daemon = build_daemon()
    host, port = daemon.start()
    stop_event = threading.Event()
    _install_stop_handlers(stop_event)
    print(f"serving on http://{host}:{port}  (model {daemon.model_version})")
    print("endpoints: /healthz /metrics /admin/status /v1/forecast "
          "/v1/forecast_batch /admin/reload; SIGHUP reloads the artifact",
          file=sys.stderr)
    try:
        stop_event.wait()
        print("draining and shutting down...", file=sys.stderr)
    except KeyboardInterrupt:
        print("draining and shutting down...", file=sys.stderr)
    finally:
        daemon.stop(drain=True)
    return 0


def _install_stop_handlers(stop_event: "threading.Event") -> None:
    """SIGTERM/SIGINT → set ``stop_event`` so the foreground serve loop
    drains and exits 0 instead of dying mid-batch.

    A bare ``threading.Event().wait()`` is uninterruptible by SIGTERM on
    some platforms (CC008): nothing ever sets an anonymous event, and
    the default handler kills the process with the batcher mid-flight.
    Keeping a reference and setting it from the shared
    ``install_signal_handler`` chokepoint mirrors the supervisor's own
    child shutdown path.
    """
    from repro.serve.supervisor import install_signal_handler

    def _on_stop(signum, frame) -> None:
        stop_event.set()

    for signame in ("SIGTERM", "SIGINT"):
        install_signal_handler(signame, _on_stop)


def _dispatch(args, config) -> int:
    if args.command == "serve":
        return _serve_command(args, config)
    if args.command == "workload":
        return _workload_command(args)
    if args.command == "plan":
        optimized = Optimizer(_catalog(args), config).optimize(args.sql)
        print(optimized.plan.pretty())
        print(f"\nestimated rows : {optimized.estimated_rows:,.0f}")
        print(f"optimizer cost : {optimized.cost:,.1f} (abstract units)")
        return 0
    if args.command == "measure":
        catalog = _catalog(args)
        optimized = Optimizer(catalog, config).optimize(args.sql)
        metrics = Executor(catalog, config).execute(optimized.plan).metrics
        print(f"elapsed time     : {metrics.elapsed_time:.2f}s")
        print(f"records accessed : {metrics.records_accessed:,}")
        print(f"records used     : {metrics.records_used:,}")
        print(f"disk I/Os        : {metrics.disk_ios:,}")
        print(f"message count    : {metrics.message_count:,}")
        print(f"message bytes    : {metrics.message_bytes:,}")
        return 0
    if args.command == "train":
        predictor = QueryPerformancePredictor.train_on_workload(
            args.workload,
            n_queries=args.queries,
            scale=args.scale,
            seed=args.seed,
            config=config,
            two_step=args.two_step,
            fallback=args.fallback,
            jobs=args.jobs,
            chunk_size=args.chunk_size,
        )
        path = Path(args.save)
        predictor.save(path)
        key = (args.workload, args.scale, args.seed, args.system,
               args.queries, args.two_step, args.fallback)
        _service_cache[key] = predictor  # repro: allow[CC003] single-threaded
        print(f"trained on {args.queries} queries; artifact: {path}")
        return 0
    if args.command in ("predict", "explain"):
        predictor = _service(args, config)
        if args.command == "explain":
            print(predictor.explain(args.sql))
        else:
            metrics = predictor.predict(args.sql)
            print(f"predicted elapsed time : {metrics.elapsed_time:.2f}s")
            print(f"predicted records used : {metrics.records_used:,}")
            print(f"predicted disk I/Os    : {metrics.disk_ios:,}")
        return 0
    if args.command == "forecast":
        if args.batch:
            sqls = _split_statements(Path(args.batch).read_text())
        elif args.sql:
            sqls = _split_statements(args.sql)
        else:
            print("error: forecast needs a SQL argument or --batch FILE",
                  file=sys.stderr)
            return 2
        if not sqls:
            print("error: no SQL statements to forecast", file=sys.stderr)
            return 2
        predictor = _service(args, config)
        forecasts = predictor.forecast_many(sqls)
        staged = any(fc.served_by is not None for fc in forecasts)
        linted = any(fc.warnings for fc in forecasts)
        header = (
            f"{'#':>3}  {'elapsed':>9}  {'category':<13}"
            f"{'disk I/Os':>10}  {'cost':>10}  conf"
        )
        if staged:
            header += "  stage"
        if linted:
            header += "  lint"
        print(header)
        print("-" * len(header))
        for i, fc in enumerate(forecasts):
            if fc.confidence is None:
                conf = "n/a"
            else:
                conf = "LOW" if fc.confidence.anomalous else "ok"
            row = (
                f"{i:>3}  {fc.metrics.elapsed_time:>8.2f}s  "
                f"{fc.category:<13}{fc.metrics.disk_ios:>10,}  "
                f"{fc.optimizer_cost:>10,.1f}  {conf:<4}"
            )
            if staged:
                row += f"  {fc.served_by}"
            if linted:
                ids = ",".join(
                    sorted({w.rule_id for w in fc.warnings})
                ) or "-"
                row += f"  {ids}"
            print(row)
        return 0
    if args.command == "lint":
        return _lint_command(args, config)
    if args.command == "pools":
        from repro.experiments.corpus import build_corpus
        from repro.experiments.experiments import fig2_query_pools
        from repro.experiments.report import format_pool_table
        from repro.workloads.generator import generate_pool

        catalog = _catalog(args)
        pool = generate_pool(
            args.queries, seed=args.seed, workload=args.workload
        )
        corpus = build_corpus(
            catalog, config, pool, jobs=args.jobs,
            chunk_size=args.chunk_size,
        )
        print(format_pool_table(fig2_query_pools(corpus)))
        return 0
    if args.command == "metrics":
        if args.demo:
            obs.enable_metrics()
            service = QueryPerformancePredictor.train_on_tpcds(
                n_queries=40,
                scale_factor=args.scale,
                seed=args.seed,
                config=config,
                jobs=args.jobs,
                chunk_size=args.chunk_size,
            )
            service.forecast_many(
                [
                    "SELECT count(*) AS c FROM store_sales ss "
                    "WHERE ss.ss_quantity > 30",
                    "SELECT count(*) AS c FROM customer c "
                    "WHERE c.c_birth_year > 1970",
                ]
            )
        if args.format == "json":
            print(json.dumps(obs.metrics_snapshot(), indent=2, default=str))
        else:
            print(obs.get_registry().render_prometheus(), end="")
        return 0
    return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
