"""Run the repository's static analysis gate (lint + typing).

Usage (from the repository root)::

    PYTHONPATH=src python scripts/check.py                # human output
    PYTHONPATH=src python scripts/check.py --format json  # CI / tooling
    PYTHONPATH=src python scripts/check.py --no-mypy      # AST lint only

Runs Pack A (the ``RDnnn`` codebase-contract rules) and the static
half of Pack C (the ``CCnnn`` concurrency rules, see
docs/STATIC_ANALYSIS.md and docs/CONCURRENCY.md) over ``src/repro``
and then mypy with the ``pyproject.toml`` configuration.  Exits 0 only
when both are clean.
Environments without mypy still run the full AST lint — including the
RD009 annotation gate — and report the mypy half as skipped.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[1]
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.runner import run_checks  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Self-lint src/repro and run the mypy typing gate."
    )
    parser.add_argument(
        "--format", choices=["text", "json"], default="text",
        help="output format (default text)",
    )
    parser.add_argument(
        "--no-mypy", action="store_true",
        help="skip the mypy half (AST lint only)",
    )
    args = parser.parse_args(argv)
    report = run_checks(repo_root=REPO_ROOT, with_mypy=not args.no_mypy)
    if args.format == "json":
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.render_text())
    return report.exit_code


if __name__ == "__main__":
    raise SystemExit(main())
