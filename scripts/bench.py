"""Run the performance benchmark suite and record the perf trajectory.

Usage (from the repository root)::

    PYTHONPATH=src python scripts/bench.py                 # full run
    PYTHONPATH=src python scripts/bench.py --quick         # CI smoke
    PYTHONPATH=src python scripts/bench.py --jobs 8 --out BENCH_pr2.json

Writes a machine-readable JSON report (see docs/PERFORMANCE.md for the
schema and the current baseline) and prints a human summary.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parents[1] / "src"))

from repro.experiments.bench import format_report, run_benchmarks  # noqa: E402


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Benchmark corpus build, KCCA fit and predict latency."
    )
    parser.add_argument(
        "--quick", action="store_true",
        help="CI smoke mode: tiny workloads, a few seconds total",
    )
    parser.add_argument(
        "--jobs", type=int, default=4,
        help="worker count for the parallel corpus-build point (default 4)",
    )
    parser.add_argument(
        "--label", default="pr2", help="report label (default pr2)"
    )
    parser.add_argument(
        "--out", type=Path, default=None, metavar="FILE",
        help="write the JSON report here (e.g. BENCH_pr2.json)",
    )
    args = parser.parse_args(argv)
    report = run_benchmarks(
        quick=args.quick, jobs=args.jobs, label=args.label, out=args.out
    )
    print(format_report(report))
    if args.out is not None:
        print(f"\nreport written to {args.out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
