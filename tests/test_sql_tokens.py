"""Tokenizer tests."""

import pytest

from repro.errors import TokenizeError
from repro.sql.tokens import Token, tokenize


def kinds(text):
    return [t.kind for t in tokenize(text)]


def values(text):
    return [t.value for t in tokenize(text)[:-1]]


class TestBasicTokens:
    def test_keywords_are_uppercased(self):
        tokens = tokenize("select From WHERE")
        assert [t.value for t in tokens[:-1]] == ["SELECT", "FROM", "WHERE"]
        assert all(t.kind == "KEYWORD" for t in tokens[:-1])

    def test_identifiers_are_lowercased(self):
        tokens = tokenize("Store_Sales SS")
        assert [t.value for t in tokens[:-1]] == ["store_sales", "ss"]
        assert all(t.kind == "IDENT" for t in tokens[:-1])

    def test_ends_with_eof(self):
        assert tokenize("")[-1].kind == "EOF"
        assert tokenize("select")[-1].kind == "EOF"

    def test_integer_literal(self):
        token = tokenize("42")[0]
        assert token.kind == "NUMBER"
        assert token.value == "42"

    def test_float_literal(self):
        token = tokenize("3.14")[0]
        assert token.kind == "NUMBER"
        assert token.value == "3.14"

    def test_leading_dot_float(self):
        token = tokenize(".5")[0]
        assert token.kind == "NUMBER"
        assert token.value == ".5"

    def test_string_literal(self):
        token = tokenize("'hello world'")[0]
        assert token.kind == "STRING"
        assert token.value == "hello world"

    def test_string_with_escaped_quote(self):
        token = tokenize("'it''s'")[0]
        assert token.value == "it's"

    def test_empty_string_literal(self):
        token = tokenize("''")[0]
        assert token.kind == "STRING"
        assert token.value == ""


class TestOperators:
    @pytest.mark.parametrize("op", ["<=", ">=", "<>", "!="])
    def test_two_char_operators(self, op):
        tokens = tokenize(f"a {op} b")
        assert tokens[1] == Token("OP", op, 2)

    @pytest.mark.parametrize("op", list("<>=+-*/%(),."))
    def test_single_char_operators(self, op):
        token = tokenize(op)[0]
        assert token.kind == "OP"
        assert token.value == op

    def test_qualified_name_tokens(self):
        assert values("ss.ss_item_sk") == ["ss", ".", "ss_item_sk"]


class TestCommentsAndPositions:
    def test_line_comment_is_skipped(self):
        assert values("select -- a comment\n 1") == ["SELECT", "1"]

    def test_comment_at_end_without_newline(self):
        assert values("select 1 -- trailing") == ["SELECT", "1"]

    def test_positions_are_character_offsets(self):
        tokens = tokenize("ab cd")
        assert tokens[0].position == 0
        assert tokens[1].position == 3

    def test_is_keyword_helper(self):
        token = tokenize("select")[0]
        assert token.is_keyword("SELECT")
        assert token.is_keyword("select")
        assert not token.is_keyword("FROM")


class TestTokenizeErrors:
    def test_unterminated_string(self):
        with pytest.raises(TokenizeError) as excinfo:
            tokenize("select 'oops")
        assert excinfo.value.position == 7

    def test_unexpected_character(self):
        with pytest.raises(TokenizeError):
            tokenize("select #")

    def test_whitespace_only_input(self):
        tokens = tokenize("   \n\t ")
        assert len(tokens) == 1
        assert tokens[0].kind == "EOF"
