"""Shared fixtures: small catalogs, configs, and executed mini-corpora.

Everything here is deliberately small (scale factor 0.1-0.2) so the unit
and integration test suite runs in seconds; the full-size corpora live in
``data/corpora`` and are only used by the benchmark suite.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine import Executor
from repro.engine.system import research_4node
from repro.experiments.corpus import build_corpus
from repro.optimizer import Optimizer
from repro.workloads.customer import build_customer_catalog
from repro.workloads.generator import generate_pool
from repro.workloads.tpcds import build_tpcds_catalog


@pytest.fixture(scope="session")
def tpcds_catalog():
    """A small TPC-DS-like catalog shared across the test session."""
    return build_tpcds_catalog(scale_factor=0.15, seed=123)


@pytest.fixture(scope="session")
def customer_catalog():
    return build_customer_catalog(seed=321, scale=0.3)


@pytest.fixture(scope="session")
def config():
    return research_4node()


@pytest.fixture(scope="session")
def optimizer(tpcds_catalog, config):
    return Optimizer(tpcds_catalog, config)


@pytest.fixture(scope="session")
def executor(tpcds_catalog, config):
    return Executor(tpcds_catalog, config)


@pytest.fixture(scope="session")
def mini_corpus(tpcds_catalog, config):
    """A small executed corpus for model-level tests."""
    pool = generate_pool(140, seed=9, problem_fraction=0.2)
    return build_corpus(tpcds_catalog, config, pool)


@pytest.fixture()
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def serve_service(tpcds_catalog, config, mini_corpus):
    """A trained predictor for serving tests (fit once per session)."""
    from repro.api import QueryPerformancePredictor

    service = QueryPerformancePredictor(tpcds_catalog, config=config)
    service.fit_corpus(mini_corpus)
    return service


@pytest.fixture()
def load_schedule():
    """Deterministic request schedules: seeded arrivals, no wall-clock.

    Returns :func:`repro.serve.generate_load` — the same generator
    ``scripts/bench.py`` drives — so every serve/chaos drill replays an
    identical request stream for a given ``(n, seed)``.
    """
    from repro.serve.loadgen import generate_load

    return generate_load


def pytest_sessionfinish(session, exitstatus):
    """Session-end sanitizer gate for ``REPRO_SANITIZE=1`` runs.

    The CI ``concurrency-sanitizer`` job runs the serve and chaos suites
    with tracking on; any accumulated CC1xx finding (lock-order
    inversion, empty lockset, long hold) is printed and fails the run
    even though every functional assertion passed.
    """
    import os

    if os.environ.get("REPRO_SANITIZE") != "1":
        return
    from repro.analysis.sanitizer import dump_sanitizer_report

    count, report = dump_sanitizer_report()
    print(f"\n{report}")
    if count and session.exitstatus == 0:
        session.exitstatus = 1
