"""Experiment functions exercised on a small corpus (structure-level).

The full-size accuracy assertions live in ``benchmarks/``; these tests
check that every experiment entry point runs, returns well-formed results
and behaves sensibly on a small executed corpus.
"""

import pytest

from repro.engine.metrics import METRIC_NAMES
from repro.experiments.ablations import (
    ablation_components,
    ablation_feature_encoding,
    ablation_model_classes,
    ablation_regularization,
    timing_profile,
)
from repro.experiments.experiments import (
    fig2_query_pools,
    fig3_fig4_regression,
    fig8_sql_text_features,
    fig10_to_12_experiment1,
    fig14_experiment3,
    fig17_optimizer_cost,
    tab1_distance_metrics,
    tab2_neighbor_counts,
    tab3_weighting_schemes,
)
from repro.experiments.harness import split_counts, stratified_split
from repro.workloads.categories import QueryCategory


@pytest.fixture(scope="module")
def small_split(mini_corpus):
    """A small train/test split over whatever categories exist."""
    available = mini_corpus.category_indices()
    n_feather = len(available.get(QueryCategory.FEATHER, []))
    n_golf = len(available.get(QueryCategory.GOLF_BALL, []))
    train_counts, test_counts = split_counts(
        max(n_feather - 12, 10), max(n_golf - 2, 0), 0, 12, 2, 0
    )
    return stratified_split(mini_corpus, train_counts, test_counts, seed=4)


class TestFig2:
    def test_rows_cover_corpus(self, mini_corpus):
        rows = fig2_query_pools(mini_corpus)
        assert sum(row.count for row in rows) == len(mini_corpus)
        for row in rows:
            assert row.min_s <= row.mean_s <= row.max_s


class TestRegressionExperiment:
    def test_structure(self, small_split):
        train, _test = small_split
        results = fig3_fig4_regression(train)
        assert set(results) == set(METRIC_NAMES)
        for result in results.values():
            assert result.n_queries == len(train)
            assert result.negative_predictions >= 0


class TestFeatureAndDesignTables:
    def test_fig8_returns_both_risks(self, small_split):
        result = fig8_sql_text_features(small_split)
        assert set(result.sql_text_risk) == set(METRIC_NAMES)
        assert set(result.plan_risk) == set(METRIC_NAMES)

    def test_tab1_both_metrics_present(self, small_split):
        results = tab1_distance_metrics(small_split)
        assert set(results) == {"euclidean", "cosine"}

    def test_tab2_all_ks(self, small_split):
        results = tab2_neighbor_counts(small_split, ks=(3, 4, 5))
        assert set(results) == {3, 4, 5}

    def test_tab3_all_schemes(self, small_split):
        results = tab3_weighting_schemes(small_split)
        assert set(results) == {"equal", "ranked", "distance"}


class TestExperiment1Style:
    def test_result_fields(self, small_split):
        result = fig10_to_12_experiment1(small_split)
        assert result.n_test == len(small_split[1])
        assert 0.0 <= result.within_20pct_elapsed <= 1.0
        assert result.predicted.shape == result.actual.shape

    def test_kcca_beats_sql_features_even_small(self, small_split):
        """The plan-vs-SQL-text gap should already show on a small corpus."""
        comparison = fig8_sql_text_features(small_split)
        assert (
            comparison.plan_risk["elapsed_time"]
            > comparison.sql_text_risk["elapsed_time"]
        )


class TestTwoStep:
    def test_fig14_structure(self, small_split):
        result = fig14_experiment3(small_split)
        assert 0.0 <= result.classification_accuracy <= 1.0
        assert set(result.two_step_risk) == set(METRIC_NAMES)


class TestOptimizerCost:
    def test_fig17_structure(self, small_split):
        result = fig17_optimizer_cost(small_split)
        assert -1.0 <= result.log_correlation <= 1.0
        assert 0.0 <= result.within_10x_of_fit <= 1.0
        assert result.within_100x_of_fit >= result.within_10x_of_fit


class TestAblations:
    def test_regularization_grid(self, small_split):
        train, test = small_split
        results = ablation_regularization(train, test, values=(1e-3, 1e-2))
        assert set(results) == {1e-3, 1e-2}

    def test_components_grid(self, small_split):
        train, test = small_split
        results = ablation_components(train, test, values=(2, 8))
        assert set(results) == {2, 8}

    def test_feature_encoding_keys(self, small_split):
        train, test = small_split
        results = ablation_feature_encoding(train, test)
        assert "raw (paper)" in results
        assert "log+standardize" in results

    def test_model_classes(self, small_split):
        train, test = small_split
        results = ablation_model_classes(train, test)
        assert {"kcca+knn", "knn-raw", "linear-cca+knn", "regression"} == set(
            results
        )

    def test_timing_profile(self, mini_corpus):
        profile = timing_profile(mini_corpus, sizes=(40, 80), n_predict=10)
        assert len(profile.train_sizes) == 2
        assert profile.predict_seconds_per_query < 1.0
