"""Additional planner shapes and SQL-surface coverage."""

import numpy as np

from repro.engine.plan import OperatorKind


def find(plan, kind):
    return [node for node in plan.walk() if node.kind == kind]


class TestJoinSyntaxVariants:
    def test_explicit_join_on_equals_comma_join(self, optimizer, executor):
        explicit = (
            "SELECT count(*) AS c FROM store_sales ss "
            "JOIN item i ON ss.ss_item_sk = i.i_item_sk "
            "WHERE i.i_current_price > 30"
        )
        implicit = (
            "SELECT count(*) AS c FROM store_sales ss, item i "
            "WHERE ss.ss_item_sk = i.i_item_sk AND i.i_current_price > 30"
        )
        a = executor.execute(optimizer.optimize(explicit).plan)
        b = executor.execute(optimizer.optimize(implicit).plan)
        assert a.batch.columns["c"][0] == b.batch.columns["c"][0]

    def test_five_way_star_join(self, optimizer, executor):
        sql = (
            "SELECT count(*) AS c "
            "FROM store_sales ss, item i, date_dim d, store s, customer c "
            "WHERE ss.ss_item_sk = i.i_item_sk "
            "AND ss.ss_sold_date_sk = d.d_date_sk "
            "AND ss.ss_store_sk = s.s_store_sk "
            "AND ss.ss_customer_sk = c.c_customer_sk "
            "AND d.d_year = 2000"
        )
        plan = optimizer.optimize(sql).plan
        assert len(find(plan, OperatorKind.FILE_SCAN)) == 5
        assert len(find(plan, OperatorKind.HASH_JOIN)) == 4
        result = executor.execute(plan)
        assert result.n_rows == 1

    def test_two_subqueries_in_one_query(self, optimizer, executor):
        sql = (
            "SELECT count(*) AS c FROM store_sales ss "
            "WHERE ss.ss_item_sk IN "
            "(SELECT i.i_item_sk FROM item i WHERE i.i_category = 'Books') "
            "AND ss.ss_customer_sk IN "
            "(SELECT c.c_customer_sk FROM customer c "
            "WHERE c.c_preferred = 'Y')"
        )
        plan = optimizer.optimize(sql).plan
        assert len(find(plan, OperatorKind.SEMI_JOIN)) == 2
        result = executor.execute(plan)
        assert result.n_rows == 1

    def test_in_subquery_with_aggregate_output(self, optimizer, executor):
        sql = (
            "SELECT count(*) AS c FROM store_sales ss "
            "WHERE ss.ss_quantity IN "
            "(SELECT max(ws.ws_quantity) FROM web_sales ws)"
        )
        result = executor.execute(optimizer.optimize(sql).plan)
        assert result.n_rows == 1


class TestOrderingAndAliases:
    def test_order_by_aggregate_alias(self, optimizer, executor):
        sql = (
            "SELECT ss.ss_store_sk, sum(ss.ss_sales_price) AS revenue "
            "FROM store_sales ss GROUP BY ss.ss_store_sk "
            "ORDER BY revenue DESC LIMIT 5"
        )
        result = executor.execute(optimizer.optimize(sql).plan)
        revenue = result.batch.column("revenue")
        assert list(revenue) == sorted(revenue, reverse=True)

    def test_order_by_aggregate_expression(self, optimizer, executor):
        sql = (
            "SELECT ss.ss_store_sk, sum(ss.ss_quantity) AS q "
            "FROM store_sales ss GROUP BY ss.ss_store_sk "
            "ORDER BY sum(ss.ss_quantity)"
        )
        result = executor.execute(optimizer.optimize(sql).plan)
        values = result.batch.column("q")
        assert list(values) == sorted(values)

    def test_order_by_group_key(self, optimizer, executor):
        sql = (
            "SELECT d.d_moy, count(*) AS c FROM store_sales ss, date_dim d "
            "WHERE ss.ss_sold_date_sk = d.d_date_sk AND d.d_year = 1999 "
            "GROUP BY d.d_moy ORDER BY d.d_moy"
        )
        result = executor.execute(optimizer.optimize(sql).plan)
        months = result.batch.column("d.d_moy")
        assert list(months) == sorted(months)

    def test_multiple_aggregates_of_same_column(self, optimizer, executor):
        sql = (
            "SELECT min(i.i_current_price) AS lo, "
            "max(i.i_current_price) AS hi, "
            "avg(i.i_current_price) AS mid FROM item i"
        )
        result = executor.execute(optimizer.optimize(sql).plan)
        lo = result.batch.column("lo")[0]
        hi = result.batch.column("hi")[0]
        mid = result.batch.column("mid")[0]
        assert lo <= mid <= hi

    def test_select_star_with_order_and_limit(self, optimizer, executor):
        sql = "SELECT * FROM store s ORDER BY s.s_floor_space DESC LIMIT 3"
        result = executor.execute(optimizer.optimize(sql).plan)
        assert result.n_rows == 3
        space = result.batch.column("s.s_floor_space")
        assert list(space) == sorted(space, reverse=True)


class TestArithmeticProjection:
    def test_computed_select_item(self, optimizer, executor):
        sql = (
            "SELECT ss.ss_sales_price * ss.ss_quantity AS total "
            "FROM store_sales ss WHERE ss.ss_item_sk = 10"
        )
        result = executor.execute(optimizer.optimize(sql).plan)
        assert "total" in result.batch.columns

    def test_aggregate_arithmetic_combination(self, optimizer, executor):
        sql = (
            "SELECT sum(ss.ss_net_profit) / count(*) AS per_sale "
            "FROM store_sales ss"
        )
        result = executor.execute(optimizer.optimize(sql).plan)
        assert np.isfinite(result.batch.column("per_sale")[0])


class TestPlannerEdgeCases:
    def test_constant_only_predicate(self, optimizer, executor):
        result = executor.execute(
            optimizer.optimize(
                "SELECT count(*) AS c FROM item i WHERE 1 = 1"
            ).plan
        )
        assert result.batch.column("c")[0] > 0

    def test_empty_result_query(self, optimizer, executor):
        result = executor.execute(
            optimizer.optimize(
                "SELECT i.i_item_sk FROM item i WHERE i.i_current_price < 0"
            ).plan
        )
        assert result.n_rows == 0

    def test_group_by_on_empty_input(self, optimizer, executor):
        result = executor.execute(
            optimizer.optimize(
                "SELECT i.i_category, count(*) AS c FROM item i "
                "WHERE i.i_current_price < 0 GROUP BY i.i_category"
            ).plan
        )
        assert result.n_rows == 0

    def test_having_without_matching_groups(self, optimizer, executor):
        result = executor.execute(
            optimizer.optimize(
                "SELECT i.i_category, count(*) AS c FROM item i "
                "GROUP BY i.i_category HAVING count(*) > 1000000"
            ).plan
        )
        assert result.n_rows == 0

    def test_semi_join_then_regular_join(self, optimizer, executor):
        sql = (
            "SELECT count(*) AS c FROM store_sales ss, date_dim d "
            "WHERE ss.ss_sold_date_sk = d.d_date_sk "
            "AND d.d_year = 2000 "
            "AND ss.ss_item_sk IN "
            "(SELECT i.i_item_sk FROM item i WHERE i.i_current_price > 20)"
        )
        result = executor.execute(optimizer.optimize(sql).plan)
        assert result.n_rows == 1
