"""Numerical robustness of the KCCA stack under adversarial inputs."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.kcca import KCCA
from repro.core.kernels import gaussian_kernel_matrix, scale_factor_heuristic
from repro.core.predictor import KCCAPredictor

paired_data = st.integers(8, 40).flatmap(
    lambda n: st.tuples(
        arrays(np.float64, (n, 3), elements=st.floats(-1e4, 1e4)),
        arrays(np.float64, (n, 2), elements=st.floats(-1e4, 1e4)),
    )
)


class TestKCCAStability:
    @given(paired_data)
    @settings(max_examples=30, deadline=None)
    def test_correlations_always_in_unit_interval(self, data):
        """Property: canonical correlations stay in [0, 1] and finite for
        arbitrary (even degenerate) input data."""
        x, y = data
        tau_x = scale_factor_heuristic(x, 0.1)
        tau_y = scale_factor_heuristic(y, 0.2)
        kx = gaussian_kernel_matrix(x, tau_x)
        ky = gaussian_kernel_matrix(y, tau_y)
        model = KCCA(n_components=3).fit(kx, ky)
        assert np.isfinite(model.correlations).all()
        assert (model.correlations >= 0).all()
        assert (model.correlations <= 1).all()
        assert np.isfinite(model.x_projection).all()
        assert np.isfinite(model.y_projection).all()

    @given(paired_data)
    @settings(max_examples=20, deadline=None)
    def test_projection_of_training_rows_is_finite(self, data):
        x, y = data
        kx = gaussian_kernel_matrix(x, scale_factor_heuristic(x, 0.1))
        ky = gaussian_kernel_matrix(y, scale_factor_heuristic(y, 0.2))
        model = KCCA(n_components=2).fit(kx, ky)
        projected = model.project_x(kx)
        assert np.isfinite(projected).all()

    def test_duplicate_training_rows(self):
        """Identical rows make the kernel rank-deficient; the regularised
        solve must still return something sane."""
        x = np.vstack([np.ones((10, 3)), np.zeros((10, 3))])
        y = np.vstack([np.full((10, 2), 5.0), np.zeros((10, 2))])
        kx = gaussian_kernel_matrix(x, 1.0)
        ky = gaussian_kernel_matrix(y, 1.0)
        model = KCCA(n_components=2).fit(kx, ky)
        assert np.isfinite(model.correlations).all()

    def test_constant_performance_metrics(self):
        """A constant metric column (e.g. disk I/O always zero) must not
        break training or prediction."""
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, (60, 4))
        base = x[:, 0] * 10 + 1
        y = np.column_stack(
            [base, np.zeros(60), base * 2, base, np.zeros(60), base]
        )
        model = KCCAPredictor(log_features=False).fit(x, y)
        predicted = model.predict(x[:5])
        assert np.isfinite(predicted).all()
        assert np.allclose(predicted[:, 1], 0.0)
        assert np.allclose(predicted[:, 4], 0.0)

    def test_extreme_feature_magnitudes(self):
        """Cardinality features span 1..1e8; conditioning must cope."""
        rng = np.random.default_rng(1)
        x = np.column_stack(
            [
                rng.uniform(0, 5, 80),
                rng.uniform(1, 1e8, 80),
                rng.uniform(0, 1e-6, 80),
            ]
        )
        y = np.column_stack([x[:, 1] / 1e6 + 1] * 6)
        model = KCCAPredictor().fit(x, y)
        predicted = model.predict(x[:10])
        assert np.isfinite(predicted).all()
        assert (predicted > 0).all()

    def test_single_feature_column(self):
        rng = np.random.default_rng(2)
        x = rng.uniform(0, 1, (50, 1))
        y = np.column_stack([x[:, 0] * 100 + 1] * 6)
        model = KCCAPredictor(log_features=False).fit(x, y)
        assert np.isfinite(model.predict(x[:3])).all()

    @given(st.integers(1, 6))
    @settings(max_examples=6, deadline=None)
    def test_components_never_exceed_n_minus_one(self, n_components):
        x = np.random.default_rng(3).uniform(0, 1, (5, 2))
        y = x * 2
        kx = gaussian_kernel_matrix(x, 1.0)
        ky = gaussian_kernel_matrix(y, 1.0)
        model = KCCA(n_components=n_components).fit(kx, ky)
        assert model.alpha.shape[1] <= 4
