"""MapReduce substrate tests (paper Section VIII adaptation)."""

import numpy as np
import pytest

from repro.core.metrics import predictive_risk
from repro.core.predictor import KCCAPredictor
from repro.errors import ReproError
from repro.mapreduce import (
    JOB_FEATURE_NAMES,
    JOB_METRIC_NAMES,
    ClusterConfig,
    MapReduceJob,
    default_cluster,
    generate_jobs,
    job_feature_vector,
    job_templates,
    simulate_job,
)
from repro.mapreduce.simulator import n_map_tasks
from repro.rng import child_generator


def make_job(**overrides):
    base = dict(
        job_id="j1",
        job_type="sort",
        input_bytes=4 * 10**9,
        record_bytes=200,
        n_reducers=8,
        declared_map_selectivity=1.0,
        declared_reduce_selectivity=1.0,
        map_cpu_class=1.0,
        reduce_cpu_class=1.0,
        uses_combiner=False,
        actual_map_selectivity=1.0,
        actual_reduce_selectivity=1.0,
        key_skew=1.0,
    )
    base.update(overrides)
    return MapReduceJob(**base)


class TestJobSpec:
    def test_validation(self):
        with pytest.raises(ReproError):
            make_job(input_bytes=0)
        with pytest.raises(ReproError):
            make_job(n_reducers=0)

    def test_map_task_count(self):
        cluster = default_cluster(4)
        job = make_job(input_bytes=10 * cluster.split_bytes)
        assert n_map_tasks(job, cluster) == 10

    def test_tiny_job_one_map(self):
        cluster = default_cluster(4)
        assert n_map_tasks(make_job(input_bytes=100), cluster) == 1


class TestSimulator:
    def test_metrics_physical(self):
        metrics = simulate_job(make_job(), default_cluster(8))
        assert metrics.elapsed_time > 0
        vector = metrics.as_vector()
        assert (vector >= 0).all()
        assert vector.shape == (len(JOB_METRIC_NAMES),)

    def test_hdfs_read_equals_input(self):
        job = make_job()
        metrics = simulate_job(job, default_cluster(8))
        assert metrics.hdfs_read_bytes == job.input_bytes

    def test_bigger_input_slower(self):
        cluster = default_cluster(8)
        small = simulate_job(make_job(input_bytes=10**9), cluster)
        large = simulate_job(make_job(input_bytes=50 * 10**9), cluster)
        assert large.elapsed_time > small.elapsed_time

    def test_more_nodes_faster(self):
        job = make_job(input_bytes=50 * 10**9)
        slow = simulate_job(job, default_cluster(4))
        fast = simulate_job(job, default_cluster(64))
        assert fast.elapsed_time < slow.elapsed_time

    def test_combiner_reduces_shuffle(self):
        cluster = default_cluster(8)
        without = simulate_job(make_job(uses_combiner=False), cluster)
        with_combiner = simulate_job(make_job(uses_combiner=True), cluster)
        assert with_combiner.shuffle_bytes < without.shuffle_bytes

    def test_skew_slows_reduce(self):
        cluster = default_cluster(8)
        balanced = simulate_job(make_job(key_skew=1.0), cluster)
        skewed = simulate_job(make_job(key_skew=3.0), cluster)
        assert skewed.elapsed_time > balanced.elapsed_time

    def test_spills_when_output_exceeds_buffer(self):
        cluster = ClusterConfig(name="t", n_nodes=4,
                                sort_buffer_bytes=1024 * 1024)
        job = make_job(actual_map_selectivity=5.0)
        metrics = simulate_job(job, cluster)
        assert metrics.spilled_records > 0

    def test_noise_seeded(self):
        job = make_job()
        cluster = default_cluster(8)
        a = simulate_job(job, cluster, rng=child_generator(1, "x"))
        b = simulate_job(job, cluster, rng=child_generator(1, "x"))
        assert a.elapsed_time == b.elapsed_time


class TestFeaturesAndWorkload:
    def test_feature_vector_shape(self):
        vector = job_feature_vector(make_job(), default_cluster(8))
        assert vector.shape == (len(JOB_FEATURE_NAMES),)
        assert np.isfinite(vector).all()

    def test_features_use_declared_not_actual(self):
        """The feature vector must only contain pre-execution knowledge."""
        cluster = default_cluster(8)
        declared_same = job_feature_vector(
            make_job(actual_map_selectivity=0.1), cluster
        )
        declared_same2 = job_feature_vector(
            make_job(actual_map_selectivity=9.0), cluster
        )
        assert np.array_equal(declared_same, declared_same2)

    def test_generate_jobs_deterministic(self):
        a = generate_jobs(20, seed=1)
        b = generate_jobs(20, seed=1)
        assert [j.job_id for j in a] == [j.job_id for j in b]
        assert a[0].input_bytes == b[0].input_bytes

    def test_all_templates_produce_valid_jobs(self):
        rng = child_generator(3, "tpl")
        for template in job_templates():
            job = template.sampler(rng, f"x_{template.name}")
            metrics = simulate_job(job, default_cluster(8))
            assert metrics.elapsed_time > 0

    def test_workload_spans_wide_runtime_range(self):
        cluster = default_cluster(16)
        jobs = generate_jobs(60, seed=7)
        elapsed = [simulate_job(j, cluster).elapsed_time for j in jobs]
        assert max(elapsed) / min(elapsed) > 50


class TestKCCAOnJobs:
    def test_same_model_predicts_jobs(self):
        """Section VIII's claim: only the feature vectors change."""
        cluster = default_cluster(16)
        jobs = generate_jobs(400, seed=19)
        features = np.vstack(
            [job_feature_vector(j, cluster) for j in jobs]
        )
        metrics = np.vstack(
            [
                simulate_job(j, cluster, rng=child_generator(1, j.job_id))
                .as_vector()
                for j in jobs
            ]
        )
        model = KCCAPredictor().fit(features[:330], metrics[:330])
        predicted = model.predict(features[330:])
        risk = predictive_risk(predicted[:, 0], metrics[330:, 0])
        assert risk > 0.5
