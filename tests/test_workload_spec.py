"""Spec-driven workload tests: golden identity, determinism, validation.

The refactor's central promise is that moving the template layer into
``specs/`` changed *nothing* about the generated workloads: the golden
tests here compare ``generate_pool`` output bitwise against a frozen
verbatim copy of the legacy hard-coded layer
(``tests/_legacy_templates.py``), and a subprocess round-trip proves the
spec path is deterministic across interpreter runs.
"""

import json
import subprocess
import sys
from pathlib import Path

import pytest

import tests._legacy_templates as legacy
from repro.errors import WorkloadSpecError
from repro.workloads.generator import generate_pool
from repro.workloads.spec import (
    SPEC_SCHEMA_VERSION,
    builtin_workload_names,
    describe_workload,
    load_workload_spec,
    parse_simple_yaml,
    resolve_workload,
    validate_spec_data,
)

REPO_ROOT = Path(__file__).resolve().parents[1]
SPEC_DIR = REPO_ROOT / "specs"


def as_dict(instance):
    return {
        "query_id": instance.query_id,
        "sql": instance.sql,
        "template": instance.template,
        "family": instance.family,
        "params": instance.params,
    }


# ----------------------------------------------------------------------
# Golden identity against the frozen legacy layer
# ----------------------------------------------------------------------


class TestGoldenIdentity:
    @pytest.mark.parametrize("pf", [0.0, 0.2, 0.25, 0.5, 1.0])
    def test_tpcds_pool_bitwise_identical(self, pf):
        expected = legacy.generate_pool(80, seed=7, problem_fraction=pf)
        actual = generate_pool(
            80, seed=7, workload="tpcds", problem_fraction=pf
        )
        assert [as_dict(q) for q in actual] == expected

    def test_default_workload_is_tpcds(self):
        expected = legacy.generate_pool(50, seed=11)
        actual = generate_pool(50, seed=11)
        assert [as_dict(q) for q in actual] == expected

    def test_customer_pool_bitwise_identical(self):
        expected = legacy.generate_pool(
            40, seed=17, templates=legacy.customer_templates()
        )
        actual = generate_pool(40, seed=17, workload="customer")
        assert [as_dict(q) for q in actual] == expected

    def test_template_shim_matches_legacy(self):
        from repro.workloads.templates import (
            problem_templates,
            tpcds_templates,
        )

        legacy_names = [t.name for t in legacy.tpcds_templates()]
        assert [t.name for t in tpcds_templates()] == legacy_names
        legacy_problems = [t.name for t in legacy.problem_templates()]
        assert [t.name for t in problem_templates()] == legacy_problems


# ----------------------------------------------------------------------
# Determinism across processes
# ----------------------------------------------------------------------


SUBPROCESS_SNIPPET = """
import json, sys
from repro.workloads.generator import generate_pool
pool = generate_pool(30, seed=13, workload=sys.argv[1])
rows = [
    [q.query_id, q.sql, q.template, q.family, sorted(q.params.items())]
    for q in pool
]
print(json.dumps(rows, default=repr))
"""


class TestSubprocessDeterminism:
    @pytest.mark.parametrize("workload", ["tpcds", "oltp"])
    def test_pool_identical_across_interpreters(self, workload):
        def run():
            proc = subprocess.run(
                [sys.executable, "-c", SUBPROCESS_SNIPPET, workload],
                capture_output=True,
                text=True,
                check=True,
                env={"PYTHONPATH": str(REPO_ROOT / "src"), "PATH": ""},
                cwd=str(REPO_ROOT),
            )
            return proc.stdout

        first, second = run(), run()
        assert first == second
        assert json.loads(first)  # valid, non-empty


# ----------------------------------------------------------------------
# Spec loading and validation
# ----------------------------------------------------------------------


class TestSpecLoading:
    def test_builtin_names_cover_shipped_specs(self):
        names = builtin_workload_names()
        for expected in ("tpcds", "customer", "oltp", "analytics",
                         "tpcds_skew"):
            assert expected in names

    @pytest.mark.parametrize(
        "name", ["tpcds", "customer", "oltp", "analytics", "tpcds_skew"]
    )
    def test_shipped_specs_load_and_compile(self, name):
        compiled = resolve_workload(name)
        assert compiled.spec.name == name
        assert compiled.templates
        assert abs(sum(compiled.weights.values()) - 1.0) < 1e-9

    def test_describe_mentions_families(self):
        text = describe_workload("oltp")
        assert "oltp_point" in text and "oltp_range" in text

    def test_example_spec_loads(self):
        spec = load_workload_spec(
            REPO_ROOT / "examples" / "workloads" / "minimal.yaml"
        )
        assert spec.name == "minimal"
        assert len(spec.templates) == 2

    def test_resolve_accepts_path_string(self):
        compiled = resolve_workload(str(SPEC_DIR / "oltp.yaml"))
        assert compiled.spec.name == "oltp"

    def test_unknown_builtin_raises(self):
        with pytest.raises(WorkloadSpecError):
            resolve_workload("no_such_workload")


def minimal_spec_data(**overrides):
    data = {
        "spec_version": SPEC_SCHEMA_VERSION,
        "name": "unit",
        "catalog": {"kind": "tpcds", "scale_factor": 0.05, "seed": 1},
        "tables": {
            "store_sales": ["ss_item_sk", "ss_quantity", "ss_sales_price"],
        },
        "families": [{"name": "standard", "weight": 1.0}],
        "templates": [
            {
                "name": "t1",
                "family": "standard",
                "sql": (
                    "SELECT count(*) AS c FROM store_sales ss "
                    "WHERE ss.ss_quantity > {q}"
                ),
                "params": [
                    {"strategy": "int_uniform", "name": "q", "low": 1,
                     "high": 50},
                ],
            },
        ],
    }
    data.update(overrides)
    return data


class TestValidation:
    def test_minimal_spec_is_valid(self):
        spec, errors = validate_spec_data(minimal_spec_data())
        assert errors == []
        assert spec is not None

    def test_missing_placeholder_strategy(self):
        data = minimal_spec_data()
        data["templates"][0]["params"] = []
        spec, errors = validate_spec_data(data)
        assert spec is None
        assert any("q" in e for e in errors)

    def test_unknown_table_is_reported(self):
        data = minimal_spec_data()
        data["templates"][0]["sql"] = (
            "SELECT count(*) AS c FROM nonexistent_table nt "
            "WHERE nt.ss_quantity > {q}"
        )
        spec, errors = validate_spec_data(data)
        assert spec is None
        assert any("nonexistent_table" in e for e in errors)

    def test_unknown_strategy_is_reported(self):
        data = minimal_spec_data()
        data["templates"][0]["params"][0]["strategy"] = "made_up"
        spec, errors = validate_spec_data(data)
        assert spec is None
        assert any("made_up" in e for e in errors)

    def test_unknown_family_is_reported(self):
        data = minimal_spec_data()
        data["templates"][0]["family"] = "phantom"
        spec, errors = validate_spec_data(data)
        assert spec is None
        assert any("phantom" in e for e in errors)

    def test_bad_spec_version_is_reported(self):
        spec, errors = validate_spec_data(
            minimal_spec_data(spec_version=999)
        )
        assert spec is None
        assert any("version" in e.lower() for e in errors)

    def test_load_error_carries_structured_errors(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps(minimal_spec_data(spec_version=999)))
        with pytest.raises(WorkloadSpecError) as excinfo:
            load_workload_spec(bad)
        assert excinfo.value.errors


# ----------------------------------------------------------------------
# YAML-subset parser units
# ----------------------------------------------------------------------


class TestYamlSubset:
    def test_nested_mappings_sequences_and_scalars(self):
        text = "\n".join(
            [
                "name: demo",
                "count: 3",
                "ratio: 0.5",
                "flag: true",
                "items:",
                "  - name: a",
                "    weight: 1.0",
                "  - name: b",
                "pools:",
                "  colors: [red, 'green', blue]",
            ]
        )
        data = parse_simple_yaml(text)
        assert data["name"] == "demo"
        assert data["count"] == 3
        assert data["ratio"] == 0.5
        assert data["flag"] is True
        assert data["items"] == [
            {"name": "a", "weight": 1.0},
            {"name": "b"},
        ]
        assert data["pools"]["colors"] == ["red", "green", "blue"]

    def test_folded_scalar_joins_with_spaces(self):
        text = "\n".join(
            [
                "sql: >",
                "  SELECT count(*) AS c",
                "  FROM store_sales",
            ]
        )
        assert (
            parse_simple_yaml(text)["sql"]
            == "SELECT count(*) AS c FROM store_sales"
        )

    def test_comments_stripped_outside_quotes(self):
        data = parse_simple_yaml(
            "name: demo  # trailing comment\nvalue: '# not a comment'"
        )
        assert data == {"name": "demo", "value": "# not a comment"}


# ----------------------------------------------------------------------
# Generator error handling (satellite: clear empty-pool errors)
# ----------------------------------------------------------------------


class TestGeneratorErrors:
    def test_empty_template_list_raises_value_error(self):
        with pytest.raises(ValueError, match="no templates"):
            generate_pool(5, templates=[])

    def test_templates_and_workload_are_exclusive(self):
        from repro.workloads.templates import tpcds_templates

        with pytest.raises(ValueError, match="either"):
            generate_pool(
                5, templates=tpcds_templates(), workload="tpcds"
            )


# ----------------------------------------------------------------------
# New spec-only families end to end
# ----------------------------------------------------------------------


class TestNewFamilies:
    @pytest.mark.parametrize(
        "workload,families",
        [
            ("oltp", {"oltp_point", "oltp_range"}),
            ("analytics", {"rollup", "pivot"}),
            ("tpcds_skew", {"problem", "standard"}),
        ],
    )
    def test_pool_realises_declared_families(self, workload, families):
        pool = generate_pool(40, seed=3, workload=workload)
        assert {q.family for q in pool} == families

    def test_per_family_accuracy_end_to_end(self):
        from repro.experiments.experiments import workload_family_accuracy

        result = workload_family_accuracy(
            "oltp", n_queries=32, scale=0.05, seed=29
        )
        assert result.n_train + result.n_test == 32
        assert set(result.families) == {"oltp_point", "oltp_range"}
        for row in result.families.values():
            assert row["n"] >= 1
            fractions = row["within_tolerance"]
            assert "elapsed_time" in fractions
            assert all(0.0 <= v <= 1.0 for v in fractions.values())
        assert 0.0 <= result.within_20pct_elapsed <= 1.0

    def test_family_helpers(self):
        from repro.workloads.categories import (
            QueryCategory,
            family_category_breakdown,
            family_mix,
        )

        pool = generate_pool(30, seed=5, workload="analytics")
        mix = family_mix(q.family for q in pool)
        assert sum(mix.values()) == 30
        assert set(mix) == {"rollup", "pivot"}
        breakdown = family_category_breakdown(
            (q.family, 1.0) for q in pool
        )
        assert breakdown["rollup"][QueryCategory.FEATHER] == mix["rollup"]


# ----------------------------------------------------------------------
# API plumbing
# ----------------------------------------------------------------------


class TestApiPlumbing:
    @pytest.fixture(scope="class")
    def oltp_predictor(self):
        from repro.api import QueryPerformancePredictor

        return QueryPerformancePredictor.train_on_workload(
            "oltp", n_queries=40, scale=0.05, seed=7
        )

    def test_train_on_workload_records_recipe(self, oltp_predictor):
        assert oltp_predictor._catalog_spec["workload"] == "oltp"
        assert oltp_predictor._catalog_spec["kind"] == "tpcds"

    def test_forecast_workload_per_family(self, oltp_predictor):
        rows = oltp_predictor.forecast_workload(
            "oltp", n_queries=8, seed=101
        )
        assert len(rows) == 8
        for instance, forecast in rows:
            assert instance.family in ("oltp_point", "oltp_range")
            assert forecast.metrics.elapsed_time > 0


# ----------------------------------------------------------------------
# CLI workload subcommand
# ----------------------------------------------------------------------


class TestCliWorkload:
    def test_validate_shipped_specs(self, capsys):
        from repro.cli import main

        code = main(
            ["workload", "validate", str(SPEC_DIR),
             str(REPO_ROOT / "examples" / "workloads")]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "6/6 specs valid" in out

    def test_validate_rejects_broken_spec(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "broken.yaml"
        bad.write_text("spec_version: 999\nname: broken\n")
        code = main(["workload", "validate", str(bad)])
        out = capsys.readouterr().out
        assert code == 1
        assert "FAIL" in out

    def test_describe_and_sample(self, capsys):
        from repro.cli import main

        assert main(["workload", "describe", "analytics"]) == 0
        described = capsys.readouterr().out
        assert "rollup" in described
        assert (
            main(
                ["--workload", "tpcds_skew", "workload", "sample",
                 "--queries", "3"]
            )
            == 0
        )
        sampled = capsys.readouterr().out
        assert sampled.count("-- q") == 3
