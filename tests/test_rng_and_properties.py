"""Determinism utilities and cross-module property tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Executor
from repro.optimizer import Optimizer
from repro.rng import child_generator, derive_seed, generator
from repro.workloads.generator import generate_pool


class TestRng:
    def test_derive_seed_deterministic(self):
        assert derive_seed(1, "a") == derive_seed(1, "a")

    def test_derive_seed_label_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_derive_seed_seed_sensitivity(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_derive_seed_is_64_bit(self):
        assert 0 <= derive_seed(123, "anything") < 2**64

    def test_child_generators_independent(self):
        a = child_generator(1, "x").normal(size=10)
        b = child_generator(1, "y").normal(size=10)
        assert not np.allclose(a, b)

    def test_generator_reproducible(self):
        assert generator(5).integers(0, 100) == generator(5).integers(0, 100)

    @given(st.integers(0, 2**31), st.text(max_size=20))
    @settings(max_examples=50, deadline=None)
    def test_derive_seed_always_valid(self, seed, label):
        value = derive_seed(seed, label)
        assert 0 <= value < 2**64


class TestCrossModuleInvariants:
    """Engine-level invariants checked over a sample of generated queries."""

    @pytest.fixture(scope="class")
    def executed(self, tpcds_catalog, config):
        optimizer = Optimizer(tpcds_catalog, config)
        executor = Executor(tpcds_catalog, config)
        pool = generate_pool(35, seed=31, problem_fraction=0.3)
        results = []
        for query in pool:
            optimized = optimizer.optimize(query.sql)
            result = executor.execute(
                optimized.plan, rng=child_generator(2, query.query_id)
            )
            results.append((query, optimized, result))
        return results

    def test_all_metrics_non_negative(self, executed):
        for _query, _opt, result in executed:
            assert (result.metrics.as_vector() >= 0).all()

    def test_elapsed_exceeds_startup(self, executed, config):
        for _query, _opt, result in executed:
            assert result.metrics.elapsed_time > config.startup_s * 0.5

    def test_records_used_le_accessed(self, executed):
        for _query, _opt, result in executed:
            assert result.metrics.records_used <= result.metrics.records_accessed

    def test_optimizer_cost_positive(self, executed):
        for _query, optimized, _result in executed:
            assert optimized.cost > 0

    def test_estimates_at_least_one_row(self, executed):
        for _query, optimized, _result in executed:
            for node in optimized.plan.walk():
                assert node.estimated_rows >= 1.0

    def test_feature_vectors_finite_non_negative(self, executed):
        from repro.core.features import plan_feature_vector

        for _query, optimized, _result in executed:
            vector = plan_feature_vector(optimized.plan)
            assert np.isfinite(vector).all()
            assert (vector >= 0).all()

    def test_message_count_at_least_collect(self, executed, config):
        """Every top-level query ends in a collect exchange."""
        for _query, _opt, result in executed:
            assert result.metrics.message_count >= config.n_nodes

    def test_elapsed_correlates_with_cpu_work(self, executed):
        """Across the pool, more busy time means more elapsed time."""
        elapsed = np.array([r.metrics.elapsed_time for _q, _o, r in executed])
        cpu = np.array([r.metrics.cpu_seconds for _q, _o, r in executed])
        assert np.corrcoef(np.log1p(elapsed), np.log1p(cpu))[0, 1] > 0.9

    def test_sql_features_parse_for_all(self, executed):
        from repro.sql.text_features import sql_text_features

        for query, _opt, _result in executed:
            vector = sql_text_features(query.sql)
            assert vector.shape == (9,)
            assert (vector >= 0).all()
