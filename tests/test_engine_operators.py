"""Operator algorithm tests, checked against naive pure-numpy oracles."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine.operators import (
    Batch,
    distinct_batch,
    equi_join_indices,
    factorize_rows,
    filter_batch,
    group_by_batch,
    hash_join_batches,
    nested_join_batches,
    scalar_aggregate_batch,
    semi_join_batch,
    sort_batch,
    top_n_batch,
)
from repro.engine.plan import AggregateSpec
from repro.errors import ExecutionError
from repro.sql.parser import parse


def predicate(cond):
    return parse(f"SELECT * FROM t WHERE {cond}").where


def expr(expression):
    return parse(f"SELECT {expression} FROM t").select[0].expr


class TestBatch:
    def test_length_validation(self):
        with pytest.raises(ExecutionError):
            Batch({"a": np.arange(3)}, n_rows=4)

    def test_take_with_repeats(self):
        batch = Batch({"a": np.array([10, 20, 30])}, n_rows=3)
        taken = batch.take(np.array([0, 0, 2]))
        assert list(taken.column("a")) == [10, 10, 30]

    def test_mask(self):
        batch = Batch({"a": np.arange(5)}, n_rows=5)
        masked = batch.mask(np.array([True, False, True, False, True]))
        assert masked.n_rows == 3

    def test_row_bytes_string_vs_numeric(self):
        batch = Batch(
            {"a": np.arange(2), "s": np.array(["x", "y"])}, n_rows=2
        )
        assert batch.row_bytes == 8 + 24

    def test_unknown_column(self):
        with pytest.raises(ExecutionError):
            Batch({}, 0).column("a")


class TestEquiJoin:
    def test_one_to_one(self):
        left = [np.array([1, 2, 3])]
        right = [np.array([3, 1, 2])]
        li, ri = equi_join_indices(left, right)
        assert len(li) == 3
        assert (np.array(left[0])[li] == np.array(right[0])[ri]).all()

    def test_one_to_many(self):
        li, ri = equi_join_indices([np.array([1, 2])], [np.array([1, 1, 2])])
        assert len(li) == 3
        assert sorted(li) == [0, 0, 1]

    def test_no_matches(self):
        li, ri = equi_join_indices([np.array([1])], [np.array([2])])
        assert len(li) == 0

    def test_multi_key(self):
        left = [np.array([1, 1, 2]), np.array([10, 20, 10])]
        right = [np.array([1, 2]), np.array([20, 10])]
        li, ri = equi_join_indices(left, right)
        pairs = {(int(left[0][i]), int(left[1][i])) for i in li}
        assert pairs == {(1, 20), (2, 10)}

    def test_string_keys(self):
        li, ri = equi_join_indices(
            [np.array(["a", "b"])], [np.array(["b", "b", "c"])]
        )
        assert len(li) == 2
        assert (li == 1).all()

    @given(
        st.lists(st.integers(0, 8), min_size=0, max_size=40),
        st.lists(st.integers(0, 8), min_size=0, max_size=40),
    )
    @settings(max_examples=60, deadline=None)
    def test_matches_nested_loop_oracle(self, left_keys, right_keys):
        """Property: equi join == brute-force nested loop join."""
        left = np.array(left_keys, dtype=np.int64)
        right = np.array(right_keys, dtype=np.int64)
        li, ri = equi_join_indices([left], [right])
        got = sorted(zip(li.tolist(), ri.tolist()))
        expected = sorted(
            (i, j)
            for i in range(len(left))
            for j in range(len(right))
            if left[i] == right[j]
        )
        assert got == expected


class TestHashJoinBatches:
    def test_columns_merged(self):
        left = Batch({"l.k": np.array([1, 2]), "l.v": np.array([10, 20])}, 2)
        right = Batch({"r.k": np.array([2, 1]), "r.w": np.array([200, 100])}, 2)
        out = hash_join_batches(left, right, [("l.k", "r.k")])
        assert out.n_rows == 2
        row = {k: out.column(k)[0] for k in out.columns}
        assert row["l.v"] * 10 == row["r.w"]

    def test_residual_predicate(self):
        left = Batch({"l.k": np.array([1, 1]), "l.v": np.array([5, 50])}, 2)
        right = Batch({"r.k": np.array([1]), "r.w": np.array([10])}, 1)
        out = hash_join_batches(
            left, right, [("l.k", "r.k")], residual=predicate("l.v > r.w")
        )
        assert out.n_rows == 1
        assert out.column("l.v")[0] == 50

    def test_duplicate_column_names_rejected(self):
        left = Batch({"k": np.array([1])}, 1)
        right = Batch({"k": np.array([1])}, 1)
        with pytest.raises(ExecutionError):
            hash_join_batches(left, right, [("k", "k")])


class TestNestedJoin:
    def test_theta_join(self):
        left = Batch({"l.a": np.array([1, 5, 9])}, 3)
        right = Batch({"r.b": np.array([2, 6])}, 2)
        out = nested_join_batches(left, right, predicate("l.a > r.b"))
        # pairs: (5,2), (9,2), (9,6)
        assert out.n_rows == 3

    def test_cross_join(self):
        left = Batch({"l.a": np.arange(3)}, 3)
        right = Batch({"r.b": np.arange(4)}, 4)
        out = nested_join_batches(left, right, None)
        assert out.n_rows == 12

    def test_empty_side(self):
        left = Batch({"l.a": np.arange(0)}, 0)
        right = Batch({"r.b": np.arange(4)}, 4)
        out = nested_join_batches(left, right, None)
        assert out.n_rows == 0

    def test_chunking_matches_unchunked(self, monkeypatch):
        import repro.engine.operators as ops

        left = Batch({"l.a": np.arange(100)}, 100)
        right = Batch({"r.b": np.arange(50)}, 50)
        pred = predicate("l.a = r.b")
        full = nested_join_batches(left, right, pred)
        monkeypatch.setattr(ops, "_NL_CHUNK_ELEMENTS", 64)
        chunked = ops.nested_join_batches(left, right, pred)
        assert chunked.n_rows == full.n_rows == 50


class TestSemiJoin:
    def test_semi(self):
        left = Batch({"l.k": np.array([1, 2, 3])}, 3)
        right = Batch({"r.k": np.array([2, 2, 3])}, 3)
        out = semi_join_batch(left, right, [("l.k", "r.k")])
        assert list(out.column("l.k")) == [2, 3]

    def test_anti(self):
        left = Batch({"l.k": np.array([1, 2, 3])}, 3)
        right = Batch({"r.k": np.array([2])}, 1)
        out = semi_join_batch(left, right, [("l.k", "r.k")], anti=True)
        assert list(out.column("l.k")) == [1, 3]

    def test_semi_does_not_duplicate(self):
        """Semi join output has at most one row per left row."""
        left = Batch({"l.k": np.array([1])}, 1)
        right = Batch({"r.k": np.array([1, 1, 1])}, 3)
        out = semi_join_batch(left, right, [("l.k", "r.k")])
        assert out.n_rows == 1


class TestSort:
    def test_ascending(self):
        batch = Batch({"a": np.array([3, 1, 2])}, 3)
        assert list(sort_batch(batch, [("a", False)]).column("a")) == [1, 2, 3]

    def test_descending(self):
        batch = Batch({"a": np.array([3, 1, 2])}, 3)
        assert list(sort_batch(batch, [("a", True)]).column("a")) == [3, 2, 1]

    def test_multi_key(self):
        batch = Batch(
            {"a": np.array([1, 1, 0]), "b": np.array([5, 9, 7])}, 3
        )
        out = sort_batch(batch, [("a", False), ("b", True)])
        assert list(out.column("a")) == [0, 1, 1]
        assert list(out.column("b")) == [7, 9, 5]

    def test_string_descending(self):
        batch = Batch({"s": np.array(["b", "c", "a"])}, 3)
        out = sort_batch(batch, [("s", True)])
        assert list(out.column("s")) == ["c", "b", "a"]

    def test_empty_keys_identity(self):
        batch = Batch({"a": np.array([3, 1])}, 2)
        assert sort_batch(batch, []) is batch


class TestGroupBy:
    def make(self):
        return Batch(
            {
                "g.k": np.array([1, 2, 1, 2, 1]),
                "g.v": np.array([10.0, 20.0, 30.0, 40.0, 50.0]),
            },
            5,
        )

    def test_count_star(self):
        out = group_by_batch(
            self.make(), ["g.k"], [AggregateSpec("count", None, "cnt")]
        )
        result = dict(zip(out.column("g.k"), out.column("cnt")))
        assert result == {1: 3, 2: 2}

    def test_sum(self):
        out = group_by_batch(
            self.make(), ["g.k"], [AggregateSpec("sum", expr("g.v"), "s")]
        )
        result = dict(zip(out.column("g.k"), out.column("s")))
        assert result == {1: 90.0, 2: 60.0}

    def test_avg(self):
        out = group_by_batch(
            self.make(), ["g.k"], [AggregateSpec("avg", expr("g.v"), "a")]
        )
        result = dict(zip(out.column("g.k"), out.column("a")))
        assert result[1] == pytest.approx(30.0)

    def test_min_max(self):
        out = group_by_batch(
            self.make(),
            ["g.k"],
            [
                AggregateSpec("min", expr("g.v"), "lo"),
                AggregateSpec("max", expr("g.v"), "hi"),
            ],
        )
        result = dict(zip(out.column("g.k"), zip(out.column("lo"),
                                                 out.column("hi"))))
        assert result[1] == (10.0, 50.0)
        assert result[2] == (20.0, 40.0)

    def test_count_distinct(self):
        batch = Batch(
            {"g.k": np.array([1, 1, 1, 2]), "g.v": np.array([7, 7, 8, 9])}, 4
        )
        out = group_by_batch(
            batch, ["g.k"], [AggregateSpec("count", expr("g.v"), "d", True)]
        )
        result = dict(zip(out.column("g.k"), out.column("d")))
        assert result == {1: 2, 2: 1}

    def test_multi_key_grouping(self):
        batch = Batch(
            {
                "a": np.array([1, 1, 2, 2]),
                "b": np.array(["x", "y", "x", "x"]),
            },
            4,
        )
        out = group_by_batch(batch, ["a", "b"],
                             [AggregateSpec("count", None, "c")])
        assert out.n_rows == 3

    def test_aggregate_on_expression(self):
        out = group_by_batch(
            self.make(),
            ["g.k"],
            [AggregateSpec("sum", expr("g.v * 2"), "s2")],
        )
        result = dict(zip(out.column("g.k"), out.column("s2")))
        assert result == {1: 180.0, 2: 120.0}

    def test_empty_input(self):
        batch = Batch(
            {"g.k": np.array([], dtype=np.int64),
             "g.v": np.array([], dtype=np.float64)},
            0,
        )
        out = group_by_batch(batch, ["g.k"],
                             [AggregateSpec("sum", expr("g.v"), "s")])
        assert out.n_rows == 0
        assert "s" in out.columns

    def test_requires_keys(self):
        with pytest.raises(ExecutionError):
            group_by_batch(self.make(), [], [])

    @given(
        st.lists(
            st.tuples(st.integers(0, 4), st.floats(-100, 100)),
            min_size=1,
            max_size=80,
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_sum_matches_oracle(self, rows):
        """Property: group-by sums equal a dict-based reference."""
        keys = np.array([r[0] for r in rows])
        vals = np.array([r[1] for r in rows])
        batch = Batch({"t.k": keys, "t.v": vals}, len(rows))
        out = group_by_batch(
            batch, ["t.k"], [AggregateSpec("sum", expr("t.v"), "s")]
        )
        got = dict(zip(out.column("t.k").tolist(), out.column("s").tolist()))
        expected = {}
        for k, v in rows:
            expected[k] = expected.get(k, 0.0) + v
        assert set(got) == set(expected)
        for k in expected:
            assert got[k] == pytest.approx(expected[k], rel=1e-9, abs=1e-9)


class TestScalarAggregate:
    def test_all_functions(self):
        batch = Batch({"t.v": np.array([1.0, 2.0, 3.0])}, 3)
        out = scalar_aggregate_batch(
            batch,
            [
                AggregateSpec("count", None, "c"),
                AggregateSpec("sum", expr("t.v"), "s"),
                AggregateSpec("avg", expr("t.v"), "a"),
                AggregateSpec("min", expr("t.v"), "lo"),
                AggregateSpec("max", expr("t.v"), "hi"),
            ],
        )
        assert out.n_rows == 1
        assert out.column("c")[0] == 3
        assert out.column("s")[0] == 6.0
        assert out.column("a")[0] == 2.0
        assert out.column("lo")[0] == 1.0
        assert out.column("hi")[0] == 3.0

    def test_empty_input_count_zero(self):
        batch = Batch({"t.v": np.array([], dtype=float)}, 0)
        out = scalar_aggregate_batch(batch, [AggregateSpec("count", None, "c")])
        assert out.column("c")[0] == 0

    def test_empty_input_sum_nan(self):
        batch = Batch({"t.v": np.array([], dtype=float)}, 0)
        out = scalar_aggregate_batch(
            batch, [AggregateSpec("min", expr("t.v"), "m")]
        )
        assert np.isnan(out.column("m")[0])

    def test_count_distinct(self):
        batch = Batch({"t.v": np.array([1, 1, 2])}, 3)
        out = scalar_aggregate_batch(
            batch, [AggregateSpec("count", expr("t.v"), "d", True)]
        )
        assert out.column("d")[0] == 2


class TestDistinctFilterProjectTopN:
    def test_distinct_all_columns(self):
        batch = Batch(
            {"a": np.array([1, 1, 2]), "b": np.array([5, 5, 6])}, 3
        )
        assert distinct_batch(batch).n_rows == 2

    def test_distinct_on_keys(self):
        batch = Batch(
            {"a": np.array([1, 1, 2]), "b": np.array([5, 6, 6])}, 3
        )
        assert distinct_batch(batch, keys=["a"]).n_rows == 2

    def test_filter(self):
        batch = Batch({"t.a": np.arange(10)}, 10)
        assert filter_batch(batch, predicate("t.a >= 5")).n_rows == 5

    def test_top_n(self):
        batch = Batch({"a": np.array([5, 1, 9, 3])}, 4)
        out = top_n_batch(batch, [("a", True)], 2)
        assert list(out.column("a")) == [9, 5]

    def test_top_n_limit_exceeds_rows(self):
        batch = Batch({"a": np.array([2, 1])}, 2)
        assert top_n_batch(batch, [("a", False)], 10).n_rows == 2


class TestFactorize:
    def test_codes_are_dense(self):
        codes, n = factorize_rows([np.array([5, 5, 9, 5, 7])])
        assert n == 3
        assert set(codes.tolist()) == {0, 1, 2}

    def test_multi_column(self):
        codes, n = factorize_rows(
            [np.array([1, 1, 2]), np.array(["a", "b", "a"])]
        )
        assert n == 3

    def test_requires_columns(self):
        with pytest.raises(ExecutionError):
            factorize_rows([])
