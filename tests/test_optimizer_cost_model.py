"""Abstract cost model tests (the Figure 17 baseline)."""

import numpy as np
import pytest

from repro.engine.plan import OperatorKind, PlanNode
from repro.optimizer import plan_cost
from repro.optimizer.cost import node_cost
from repro.rng import child_generator


class TestNodeCosts:
    def test_every_operator_kind_costed(self, tpcds_catalog):
        """node_cost must return a positive finite cost for every kind."""
        scan = PlanNode(
            kind=OperatorKind.FILE_SCAN,
            table_name="item",
            binding="i",
            estimated_rows=100.0,
        )
        unary_kinds = (
            OperatorKind.SORT,
            OperatorKind.HASH_GROUPBY,
            OperatorKind.SORT_GROUPBY,
            OperatorKind.SCALAR_AGGREGATE,
            OperatorKind.DISTINCT,
            OperatorKind.FILTER,
            OperatorKind.PROJECT,
            OperatorKind.TOP_N,
            OperatorKind.EXCHANGE,
            OperatorKind.ROOT,
        )
        for kind in unary_kinds:
            node = PlanNode(
                kind=kind, children=(scan,), estimated_rows=50.0, limit=5
            )
            cost = node_cost(node, tpcds_catalog)
            assert np.isfinite(cost) and cost > 0, kind
        binary_kinds = (
            OperatorKind.HASH_JOIN,
            OperatorKind.MERGE_JOIN,
            OperatorKind.NESTED_JOIN,
            OperatorKind.SEMI_JOIN,
            OperatorKind.ANTI_JOIN,
        )
        for kind in binary_kinds:
            node = PlanNode(
                kind=kind, children=(scan, scan), estimated_rows=200.0
            )
            cost = node_cost(node, tpcds_catalog)
            assert np.isfinite(cost) and cost > 0, kind

    def test_scan_cost_tracks_table_size(self, tpcds_catalog):
        small = PlanNode(
            kind=OperatorKind.FILE_SCAN, table_name="store", binding="s",
            estimated_rows=10.0,
        )
        large = PlanNode(
            kind=OperatorKind.FILE_SCAN, table_name="store_sales",
            binding="ss", estimated_rows=10.0,
        )
        assert node_cost(large, tpcds_catalog) > node_cost(small, tpcds_catalog)

    def test_nested_join_cost_quadratic(self, tpcds_catalog):
        def nl(rows):
            scan = PlanNode(
                kind=OperatorKind.FILE_SCAN, table_name="item", binding="i",
                estimated_rows=rows,
            )
            return PlanNode(
                kind=OperatorKind.NESTED_JOIN, children=(scan, scan),
                estimated_rows=1.0,
            )

        small = node_cost(nl(1000), tpcds_catalog)
        large = node_cost(nl(4000), tpcds_catalog)
        assert large > 10 * small


class TestPlanCost:
    def test_whole_plan_cost_sums_nodes(self, optimizer, tpcds_catalog):
        plan = optimizer.optimize(
            "SELECT count(*) AS c FROM store_sales ss, item i "
            "WHERE ss.ss_item_sk = i.i_item_sk"
        ).plan
        total = plan_cost(plan, tpcds_catalog)
        parts = sum(node_cost(node, tpcds_catalog) for node in plan.walk())
        assert total == pytest.approx(parts)

    def test_cost_units_not_seconds(self, optimizer, executor, tpcds_catalog):
        """The Figure 17 premise: cost units do not map onto time units —
        the cost/seconds ratio varies widely across queries."""
        queries = [
            "SELECT count(*) AS c FROM date_dim d",
            "SELECT count(*) AS c FROM store_sales ss",
            (
                "SELECT ss1.ss_item_sk, count(*) AS c "
                "FROM store_sales ss1, store_sales ss2 "
                "WHERE ss1.ss_customer_sk = ss2.ss_customer_sk "
                "GROUP BY ss1.ss_item_sk"
            ),
        ]
        ratios = []
        for sql in queries:
            optimized = optimizer.optimize(sql)
            metrics = executor.execute(
                optimized.plan, rng=child_generator(4, sql)
            ).metrics
            ratios.append(optimized.cost / metrics.elapsed_time)
        assert max(ratios) / min(ratios) > 3.0

    def test_cost_still_correlates_loosely(
        self, optimizer, executor, tpcds_catalog
    ):
        """Cost is not garbage either: bigger plans cost more and run
        longer (the best-fit line in Figure 17 has positive slope)."""
        from repro.workloads.generator import generate_pool

        costs, times = [], []
        for query in generate_pool(25, seed=55, problem_fraction=0.2):
            optimized = optimizer.optimize(query.sql)
            result = executor.execute(optimized.plan)
            costs.append(optimized.cost)
            times.append(result.metrics.elapsed_time)
        correlation = np.corrcoef(np.log(costs), np.log(times))[0, 1]
        assert correlation > 0.3
