"""OnlinePredictor sliding-window tests: refit triggers, readiness edges,
and state_dict save → load → observe continuation."""

import numpy as np
import pytest

from repro.core.online import OnlinePredictor
from repro.errors import ModelError, NotFittedError


def _stream(n, n_features=5, n_metrics=6, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.lognormal(mean=2.0, sigma=1.0, size=(n, n_features))
    weights = rng.uniform(0.3, 1.0, size=(n_features, n_metrics))
    performance = np.log1p(features) @ weights
    return features, performance


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ModelError):
            OnlinePredictor(window_size=3)
        with pytest.raises(ModelError):
            OnlinePredictor(refit_interval=0)
        with pytest.raises(ModelError):
            OnlinePredictor(recency_boost=1.5)

    def test_not_ready_before_data(self):
        predictor = OnlinePredictor()
        assert not predictor.is_ready
        assert len(predictor) == 0
        with pytest.raises(NotFittedError):
            predictor.model
        with pytest.raises(NotFittedError):
            predictor.predict(np.ones((1, 5)))


class TestRefitTriggers:
    def test_first_fit_exactly_at_min_fit_size(self):
        features, performance = _stream(30)
        predictor = OnlinePredictor(
            window_size=64, refit_interval=5, min_fit_size=10
        )
        for row in range(9):
            predictor.observe(features[row], performance[row])
            assert not predictor.is_ready  # one short of the floor
        predictor.observe(features[9], performance[9])
        assert predictor.is_ready
        assert predictor.refit_count == 1

    def test_refit_interval_boundary(self):
        features, performance = _stream(40)
        predictor = OnlinePredictor(
            window_size=64, refit_interval=7, min_fit_size=10
        )
        for row in range(10):
            predictor.observe(features[row], performance[row])
        assert predictor.refit_count == 1
        # Six more observations: strictly inside the interval, no refit.
        for row in range(10, 16):
            predictor.observe(features[row], performance[row])
            assert predictor.refit_count == 1
        # The seventh crosses the boundary.
        predictor.observe(features[16], performance[16])
        assert predictor.refit_count == 2

    def test_interval_one_refits_every_observation(self):
        features, performance = _stream(16)
        predictor = OnlinePredictor(
            window_size=32, refit_interval=1, min_fit_size=10
        )
        for row in range(13):
            predictor.observe(features[row], performance[row])
        assert predictor.refit_count == 4  # at 10, 11, 12, 13

    def test_window_bound_respected(self):
        features, performance = _stream(50)
        predictor = OnlinePredictor(
            window_size=16, refit_interval=50, min_fit_size=10
        )
        for row in range(50):
            predictor.observe(features[row], performance[row])
        assert len(predictor) == 16

    def test_feature_width_change_rejected(self):
        features, performance = _stream(5)
        predictor = OnlinePredictor(min_fit_size=4)
        predictor.observe(features[0], performance[0])
        with pytest.raises(ModelError, match="width"):
            predictor.observe(np.ones(3), performance[1])

    def test_bulk_fit_requires_min_size(self):
        features, performance = _stream(8)
        predictor = OnlinePredictor(min_fit_size=10)
        with pytest.raises(ModelError, match="at least"):
            predictor.fit(features, performance)

    def test_bulk_fit_refits_once(self):
        features, performance = _stream(30)
        predictor = OnlinePredictor(
            window_size=64, refit_interval=5, min_fit_size=10
        )
        predictor.fit(features, performance)
        assert predictor.is_ready
        assert predictor.refit_count == 1
        assert len(predictor) == 30


class TestPersistenceContinuation:
    def test_save_load_observe_matches_uninterrupted_run(self):
        """Persist mid-stream, restore, continue: the restored predictor
        must track the uninterrupted one exactly."""
        features, performance = _stream(60)
        kwargs = dict(
            window_size=32, refit_interval=8, min_fit_size=12
        )
        continuous = OnlinePredictor(**kwargs)
        for row in range(40):
            continuous.observe(features[row], performance[row])

        interrupted = OnlinePredictor(**kwargs)
        for row in range(25):
            interrupted.observe(features[row], performance[row])
        state = interrupted.state_dict()
        restored = OnlinePredictor().load_state_dict(state)
        assert restored.window_size == 32
        assert restored.refit_interval == 8
        assert len(restored) == len(interrupted)
        assert restored.refit_count == interrupted.refit_count
        for row in range(25, 40):
            restored.observe(features[row], performance[row])

        assert restored.refit_count == continuous.refit_count
        assert len(restored) == len(continuous)
        probe = features[40:46]
        np.testing.assert_allclose(
            restored.predict(probe), continuous.predict(probe)
        )

    def test_unready_state_round_trips(self):
        features, performance = _stream(6)
        predictor = OnlinePredictor(min_fit_size=10)
        for row in range(6):
            predictor.observe(features[row], performance[row])
        restored = OnlinePredictor().load_state_dict(predictor.state_dict())
        assert not restored.is_ready
        assert len(restored) == 6
        # Continue to readiness after the restore.
        more_f, more_p = _stream(10, seed=1)
        for row in range(4):
            restored.observe(more_f[row], more_p[row])
        assert restored.is_ready

    def test_empty_state_round_trips(self):
        state = OnlinePredictor(window_size=8).state_dict()
        assert state["fitted"] is None
        restored = OnlinePredictor().load_state_dict(state)
        assert len(restored) == 0
        assert restored.window_size == 8
