"""Observability layer tests: tracing spans, metrics, drift monitoring.

Covers the PR's acceptance criteria: span nesting and exception capture,
the worker-merge path through a real ``jobs=2`` corpus build, histogram
quantiles and the Prometheus text export, the no-op fast path, the
drift-flag flip + recovery cycle, and the end-to-end requirement that a
single traced ``forecast`` emits optimize / featurize / project / knn
spans.
"""

import json

import numpy as np
import pytest

from repro import obs
from repro.api import QueryPerformancePredictor
from repro.core.online import OnlinePredictor
from repro.engine.metrics import METRIC_NAMES
from repro.errors import ModelError, ReproError
from repro.experiments.bench import bench_observability_overhead
from repro.experiments.corpus import build_corpus
from repro.obs.drift import DriftMonitor, relative_errors
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.workloads.generator import generate_pool


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends with observability off and empty."""
    obs.disable_tracing()
    obs.disable_metrics()
    obs.reset_trace()
    obs.reset_metrics()
    yield
    obs.disable_tracing()
    obs.disable_metrics()
    obs.reset_trace()
    obs.reset_metrics()


# ----------------------------------------------------------------------
# Tracing spans
# ----------------------------------------------------------------------


class TestSpans:
    def test_nesting_builds_a_tree(self):
        obs.enable_tracing()
        with obs.span("outer", n=2):
            with obs.span("inner.a"):
                pass
            with obs.span("inner.b"):
                with obs.span("leaf"):
                    pass
        roots = obs.trace_roots()
        assert [r.name for r in roots] == ["outer"]
        outer = roots[0]
        assert [c.name for c in outer.children] == ["inner.a", "inner.b"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]
        assert outer.attributes == {"n": 2}
        assert outer.wall_ms >= 0.0

    def test_walk_yields_depth_first(self):
        obs.enable_tracing()
        with obs.span("a"):
            with obs.span("b"):
                with obs.span("c"):
                    pass
            with obs.span("d"):
                pass
        (root,) = obs.trace_roots()
        assert [s.name for s in root.walk()] == ["a", "b", "c", "d"]

    def test_exception_marks_span_and_propagates(self):
        obs.enable_tracing()
        with pytest.raises(ValueError, match="boom"):
            with obs.span("failing"):
                raise ValueError("boom")
        (root,) = obs.trace_roots()
        assert root.status == "error"
        assert root.error == "ValueError: boom"

    def test_set_attaches_attributes(self):
        obs.enable_tracing()
        with obs.span("s") as current:
            current.set(rows=10, kind="scan")
        (root,) = obs.trace_roots()
        assert root.attributes == {"rows": 10, "kind": "scan"}

    def test_export_round_trips_through_dicts(self):
        obs.enable_tracing()
        with obs.span("parent", n=1):
            with obs.span("child"):
                pass
        payload = obs.export_trace(drain=True)
        assert obs.trace_roots() == []
        json.dumps(payload)  # must be JSON-able
        rebuilt = obs.Span.from_dict(payload[0])
        assert rebuilt.name == "parent"
        assert rebuilt.attributes == {"n": 1}
        assert [c.name for c in rebuilt.children] == ["child"]

    def test_attach_spans_grafts_into_open_span(self):
        obs.enable_tracing()
        payload = [{"name": "worker.span", "wall_ms": 1.0, "cpu_ms": 0.5}]
        with obs.span("parent"):
            obs.attach_spans(payload)
        (root,) = obs.trace_roots()
        assert [c.name for c in root.children] == ["worker.span"]

    def test_attach_spans_without_open_span_becomes_root(self):
        obs.enable_tracing()
        obs.attach_spans([{"name": "orphan"}])
        assert [r.name for r in obs.trace_roots()] == ["orphan"]

    def test_noop_when_disabled(self):
        with obs.span("ignored") as current:
            current.set(anything=1)
        assert obs.trace_roots() == []
        # The disabled path hands back one shared object — no allocation.
        assert obs.span("a") is obs.span("b")
        obs.attach_spans([{"name": "dropped"}])
        assert obs.trace_roots() == []

    def test_pretty_trace_renders_names_and_errors(self):
        obs.enable_tracing()
        with obs.span("fine", n=3):
            pass
        with pytest.raises(RuntimeError):
            with obs.span("broken"):
                raise RuntimeError("nope")
        rendering = obs.pretty_trace()
        assert "fine" in rendering and '"n": 3' in rendering
        assert "RuntimeError: nope" in rendering


class TestWorkerMerge:
    def test_parallel_corpus_build_merges_worker_spans(
        self, tpcds_catalog, config
    ):
        pool = generate_pool(8, seed=11)
        serial = build_corpus(tpcds_catalog, config, pool, jobs=1)
        obs.enable_tracing()
        parallel = build_corpus(tpcds_catalog, config, pool, jobs=2)
        (root,) = obs.drain_trace()
        # Observability must not perturb the measurement.
        assert np.array_equal(
            serial.performance_matrix(), parallel.performance_matrix()
        )
        assert root.name == "corpus.build"
        executes = [c for c in root.children if c.name == "corpus.execute"]
        assert len(executes) == len(pool)
        descendant_names = {s.name for c in executes for s in c.walk()}
        assert "optimizer.optimize" in descendant_names
        assert "engine.execute" in descendant_names

    def test_serial_build_traces_the_same_shape(self, tpcds_catalog, config):
        pool = generate_pool(4, seed=11)
        obs.enable_tracing()
        build_corpus(tpcds_catalog, config, pool, jobs=1)
        (root,) = obs.drain_trace()
        assert root.name == "corpus.build"
        assert sum(
            1 for c in root.children if c.name == "corpus.execute"
        ) == len(pool)


# ----------------------------------------------------------------------
# Metrics registry
# ----------------------------------------------------------------------


class TestInstruments:
    def test_counter_increments_and_rejects_negative(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        with pytest.raises(ReproError):
            counter.inc(-1)

    def test_gauge_set_and_inc(self):
        gauge = Gauge("g")
        gauge.set(4.0)
        gauge.inc(-1.5)
        assert gauge.value == 2.5

    def test_histogram_quantiles_interpolate(self):
        hist = Histogram("h", buckets=(1.0, 2.0, 4.0, 8.0))
        for value in (0.5, 1.5, 1.5, 3.0, 6.0, 7.0):
            hist.observe(value)
        assert hist.count == 6
        assert hist.sum == pytest.approx(19.5)
        p50 = hist.quantile(0.50)
        assert 1.0 <= p50 <= 2.0  # median falls in the (1, 2] bucket
        p99 = hist.quantile(0.99)
        assert 4.0 <= p99 <= 7.0  # clamped to the observed max
        assert hist.quantile(1.0) <= 7.0

    def test_histogram_empty_quantile_is_nan(self):
        hist = Histogram("h")
        assert np.isnan(hist.quantile(0.5))
        assert np.isnan(hist.percentiles()["p95"])

    def test_histogram_single_value_quantiles_exact(self):
        hist = Histogram("h", buckets=(1.0, 10.0))
        hist.observe(3.0)
        for q in (0.0, 0.5, 0.95, 1.0):
            assert hist.quantile(q) == pytest.approx(3.0)

    def test_histogram_rejects_unsorted_buckets(self):
        with pytest.raises(ReproError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_histogram_quantile_range_checked(self):
        with pytest.raises(ReproError):
            Histogram("h").quantile(1.5)


class TestRegistry:
    def test_get_or_create_shares_instances(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.names() == ["a"]

    def test_type_mismatch_rejected(self):
        registry = MetricsRegistry()
        registry.counter("a")
        with pytest.raises(ReproError, match="already registered"):
            registry.gauge("a")

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h", buckets=(1.0,)).observe(0.5)
        snap = registry.snapshot()
        assert snap["c"] == {"type": "counter", "value": 2.0}
        assert snap["g"] == {"type": "gauge", "value": 1.5}
        assert snap["h"]["count"] == 1
        assert snap["h"]["p50"] == pytest.approx(0.5)

    def test_prometheus_text_export(self):
        registry = MetricsRegistry()
        registry.counter("repro_queries_total", "queries scored").inc(3)
        hist = registry.histogram("repro_lat_seconds", buckets=(0.1, 1.0))
        hist.observe(0.05)
        hist.observe(0.5)
        hist.observe(5.0)
        text = registry.render_prometheus()
        assert "# HELP repro_queries_total queries scored" in text
        assert "# TYPE repro_queries_total counter" in text
        assert "repro_queries_total 3" in text
        # Buckets are cumulative, with a closing +Inf.
        assert 'repro_lat_seconds_bucket{le="0.1"} 1' in text
        assert 'repro_lat_seconds_bucket{le="1"} 2' in text
        assert 'repro_lat_seconds_bucket{le="+Inf"} 3' in text
        assert "repro_lat_seconds_count 3" in text

    def test_timed_records_only_when_enabled(self):
        with obs.timed("repro_t_seconds", "repro_t_total"):
            pass
        assert obs.get_registry().names() == []
        obs.enable_metrics()
        with obs.timed("repro_t_seconds", "repro_t_total", count=4):
            pass
        snap = obs.metrics_snapshot()
        assert snap["repro_t_seconds"]["count"] == 1
        assert snap["repro_t_total"]["value"] == 4.0

    def test_timed_skips_counter_on_exception(self):
        obs.enable_metrics()
        with pytest.raises(KeyError):
            with obs.timed("repro_t_seconds", "repro_t_total"):
                raise KeyError("x")
        snap = obs.metrics_snapshot()
        assert snap["repro_t_seconds"]["count"] == 1  # latency still kept
        assert "repro_t_total" not in snap


# ----------------------------------------------------------------------
# Drift monitoring
# ----------------------------------------------------------------------


def _vec(value: float) -> np.ndarray:
    return np.full(len(METRIC_NAMES), value)


class TestDriftMonitor:
    def test_relative_errors_floor_zero_actuals(self):
        errors = relative_errors(np.array([1.0, 2.0]), np.array([0.0, 2.0]))
        assert np.isfinite(errors).all()
        assert errors[1] == 0.0

    def test_validation(self):
        for kwargs in (
            {"floor": 0.0},
            {"floor": 1.5},
            {"tolerance": 0.0},
            {"window": 0},
            {"min_samples": 0},
            {"min_samples": 300, "window": 200},
        ):
            with pytest.raises(ModelError):
                DriftMonitor(**kwargs)
        with pytest.raises(ModelError):
            DriftMonitor().record(_vec(1.0), _vec(1.0)[:3])
        with pytest.raises(ModelError, match="unmonitored"):
            DriftMonitor().accuracy("nope")

    def test_flip_and_recovery(self):
        monitor = DriftMonitor(
            floor=0.8, tolerance=0.2, window=20, min_samples=10
        )
        # Ten accurate observations: healthy.
        for _ in range(10):
            monitor.record(_vec(1.0), _vec(1.0))
        assert not monitor.degraded
        assert monitor.accuracy() == 1.0
        # Ten wildly wrong ones drop the window fraction to 0.5 < 0.8.
        for _ in range(10):
            monitor.record(_vec(10.0), _vec(1.0))
        assert monitor.degraded
        assert set(monitor.degraded_metrics) == set(METRIC_NAMES)
        # Twenty accurate observations push the bad ones out: recovered.
        for _ in range(20):
            monitor.record(_vec(1.0), _vec(1.0))
        assert not monitor.degraded
        assert monitor.accuracy() == 1.0

    def test_cold_window_never_degraded(self):
        monitor = DriftMonitor(window=50, min_samples=10)
        for _ in range(9):
            monitor.record(_vec(100.0), _vec(1.0))  # all wrong, too few
        assert not monitor.degraded
        assert monitor.accuracy("elapsed_time") == 0.0  # fraction is known

    def test_per_metric_independence(self):
        monitor = DriftMonitor(floor=0.9, window=20, min_samples=5)
        good = _vec(1.0)
        bad = good.copy()
        bad[METRIC_NAMES.index("disk_ios")] = 50.0  # only one metric off
        for _ in range(10):
            monitor.record(bad, good)
        assert monitor.degraded_metrics == ["disk_ios"]
        assert monitor.accuracy("elapsed_time") == 1.0
        assert monitor.accuracy() == 0.0  # worst metric governs

    def test_matrix_record_and_status(self):
        monitor = DriftMonitor(window=10, min_samples=2)
        predicted = np.vstack([_vec(1.0), _vec(2.0)])
        actual = np.vstack([_vec(1.0), _vec(1.0)])
        monitor.record(predicted, actual)
        status = monitor.status()
        assert status["total_observations"] == 2
        assert status["metrics"]["elapsed_time"]["within_fraction"] == 0.5
        monitor.reset()
        assert monitor.total_observations == 0
        assert np.isnan(monitor.accuracy())

    def test_publishes_gauges_when_metrics_enabled(self):
        obs.enable_metrics()
        monitor = DriftMonitor(window=10, min_samples=2)
        for _ in range(4):
            monitor.record(_vec(10.0), _vec(1.0))
        snap = obs.metrics_snapshot()
        assert snap["repro_drift_observations_total"]["value"] == 4.0
        assert snap["repro_drift_within_fraction_elapsed_time"]["value"] == 0.0
        assert snap["repro_drift_degraded"]["value"] == 1.0


class TestOnlinePredictorMonitor:
    def test_observe_feeds_monitor_with_pre_refit_residuals(self):
        rng = np.random.default_rng(4)
        features = rng.lognormal(2.0, 1.0, size=(60, 5))
        performance = np.log1p(features) @ rng.uniform(
            0.5, 1.0, size=(5, len(METRIC_NAMES))
        )
        predictor = OnlinePredictor(
            window_size=64, refit_interval=10, min_fit_size=20
        )
        monitor = DriftMonitor(window=30, min_samples=5, floor=0.5)
        predictor.set_monitor(monitor)
        assert predictor.monitor is monitor
        for row in range(40):
            predictor.observe(features[row], performance[row])
        # The first min_fit_size observations happen before any model
        # exists, so the monitor only sees the remainder.
        assert monitor.total_observations == 40 - 20
        # Self-predictions on a stationary stream are accurate.
        assert monitor.accuracy("elapsed_time") > 0.0

    def test_monitor_not_persisted(self, tmp_path):
        predictor = OnlinePredictor(min_fit_size=4, window_size=16)
        predictor.set_monitor(DriftMonitor())
        state = predictor.state_dict()
        restored = OnlinePredictor().load_state_dict(state)
        assert restored.monitor is None


# ----------------------------------------------------------------------
# End-to-end and bench integration
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def trained_service(tpcds_catalog, config, mini_corpus):
    service = QueryPerformancePredictor(tpcds_catalog, config=config)
    service.fit_corpus(mini_corpus)
    return service


class TestEndToEnd:
    REQUIRED_SPAN_FRAGMENTS = ("optimize", "featurize", "project", "knn")

    def test_traced_forecast_emits_required_spans(self, trained_service):
        obs.enable_tracing()
        trained_service.forecast(
            "SELECT count(*) AS c FROM store_sales ss "
            "WHERE ss.ss_quantity > 30"
        )
        payload = obs.export_trace(drain=True)
        names = {
            span.name
            for root in payload
            for span in obs.Span.from_dict(root).walk()
        }
        for fragment in self.REQUIRED_SPAN_FRAGMENTS:
            assert any(fragment in name for name in names), (
                f"no span matching {fragment!r} in {sorted(names)}"
            )
        json.dumps(payload)  # the exported trace must be valid JSON

    def test_metrics_count_forecasts(self, trained_service):
        obs.enable_metrics()
        trained_service.forecast_many(
            [
                "SELECT count(*) AS c FROM store_sales ss "
                "WHERE ss.ss_quantity > 30",
                "SELECT count(*) AS c FROM customer c "
                "WHERE c.c_birth_year > 1970",
            ]
        )
        snap = obs.metrics_snapshot()
        assert snap["repro_predict_queries_total"]["value"] == 2.0
        assert snap["repro_predict_seconds"]["count"] == 1
        text = obs.get_registry().render_prometheus()
        assert "repro_predict_queries_total 2" in text

    def test_api_facade_switches(self):
        from repro import api

        api.set_tracing(True)
        assert api.trace_enabled()
        api.set_tracing(False)
        assert not api.trace_enabled()
        api.set_metrics(True)
        assert api.metrics_enabled()
        api.set_metrics(False)
        assert api.get_metrics() == {}
        assert api.get_metrics_text() == ""

    def test_bench_overhead_restores_flags(self):
        report = bench_observability_overhead(
            n_train=40, batch=4, repeats=3, seed=1
        )
        assert not obs.tracing_enabled()
        assert not obs.metrics_enabled()
        assert obs.trace_roots() == []
        assert report["disabled"]["p95_ms"] > 0
        assert report["enabled"]["p95_ms"] > 0
        assert "enabled_overhead_pct" in report

    def test_cli_trace_out_writes_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "trace.json"
        code = main(
            [
                "--scale", "0.05", "--trace-out", str(out),
                "plan", "SELECT count(*) AS c FROM customer c",
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        names = {
            span.name
            for root in payload
            for span in obs.Span.from_dict(root).walk()
        }
        assert "optimizer.optimize" in names

    def test_cli_metrics_command_formats(self, capsys):
        from repro.cli import main

        obs.enable_metrics()
        obs.get_registry().counter("repro_example_total").inc(5)
        assert main(["metrics"]) == 0
        assert "repro_example_total 5" in capsys.readouterr().out
        assert main(["metrics", "--format", "json"]) == 0
        parsed = json.loads(capsys.readouterr().out)
        assert parsed["repro_example_total"]["value"] == 5.0
