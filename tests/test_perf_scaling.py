"""Determinism and correctness of the scaled train/serve hot paths:

* parallel corpus generation is bitwise identical to the serial build;
* Nyström KCCA tracks the exact solve (and reproduces it at rank = N);
* Nyström pipelines round-trip through save/load;
* the rewritten distance/kernel kernels match their reference formulas;
* the benchmark harness runs and emits a valid, JSON-able report.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.core.kcca import KCCA
from repro.core.kernels import (
    cross_squared_distances,
    gaussian_kernel_cross,
    gaussian_kernel_matrix,
)
from repro.core.neighbors import nearest_neighbors
from repro.core.predictor import KCCAPredictor
from repro.errors import ModelError
from repro.experiments.bench import run_benchmarks
from repro.experiments.corpus import (
    build_corpus,
    load_or_build_corpus,
    resolve_jobs,
)
from repro.pipeline import PredictionPipeline
from repro.workloads.generator import generate_pool


def _synthetic(n, seed=5, n_features=10, n_metrics=6):
    rng = np.random.default_rng(seed)
    features = rng.lognormal(3.0, 1.5, (n, n_features))
    weights = rng.uniform(0.2, 1.0, (n_features, n_metrics))
    performance = np.log1p(features) @ weights
    performance *= rng.lognormal(0.0, 0.05, performance.shape)
    return features, performance


# ----------------------------------------------------------------------
# Parallel corpus generation
# ----------------------------------------------------------------------


class TestParallelCorpus:
    def test_jobs4_bitwise_identical_to_serial(self, tpcds_catalog, config):
        pool = generate_pool(12, seed=31)
        serial = build_corpus(tpcds_catalog, config, pool)
        parallel = build_corpus(tpcds_catalog, config, pool, jobs=4)
        assert np.array_equal(
            serial.feature_matrix(), parallel.feature_matrix()
        )
        assert np.array_equal(
            serial.sql_feature_matrix(), parallel.sql_feature_matrix()
        )
        assert np.array_equal(
            serial.performance_matrix(), parallel.performance_matrix()
        )
        assert np.array_equal(
            serial.optimizer_costs(), parallel.optimizer_costs()
        )
        assert [q.query_id for q in serial.queries] == [
            q.query_id for q in parallel.queries
        ]
        assert serial.config_name == parallel.config_name

    def test_parallel_progress_reports_every_query(self, tpcds_catalog, config):
        pool = generate_pool(6, seed=32)
        seen = []
        build_corpus(
            tpcds_catalog, config, pool,
            progress=lambda done, total: seen.append((done, total)),
            jobs=2,
        )
        assert seen == [(i + 1, 6) for i in range(6)]

    def test_resolve_jobs(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(5) == 5
        assert resolve_jobs(-1) >= 1

    def test_load_or_build_forwards_jobs(self, tpcds_catalog, config, tmp_path):
        pool = generate_pool(4, seed=33)
        calls = []

        def builder(jobs=None):
            calls.append(jobs)
            return build_corpus(tpcds_catalog, config, pool, jobs=jobs)

        path = tmp_path / "corpus.npz"
        built = load_or_build_corpus(path, builder, jobs=2)
        assert calls == [2]
        # Cache hit: builder not called again, jobs irrelevant.
        cached = load_or_build_corpus(path, builder, jobs=2)
        assert calls == [2]
        assert np.array_equal(
            built.performance_matrix(), cached.performance_matrix()
        )


# ----------------------------------------------------------------------
# Nyström KCCA
# ----------------------------------------------------------------------


class TestNystromKCCA:
    def test_rank_n_reproduces_dense_solve(self):
        features, performance = _synthetic(120)
        exact = KCCAPredictor().fit(features[:100], performance[:100])
        full = KCCAPredictor(approximation="nystrom", rank=100).fit(
            features[:100], performance[:100]
        )
        held_out = features[100:]
        assert np.allclose(
            full.predict(held_out), exact.predict(held_out),
            rtol=1e-9, atol=1e-12,
        )
        assert np.allclose(
            full.canonical_correlations,
            exact.canonical_correlations,
            atol=1e-10,
        )

    def test_low_rank_within_tolerance_at_n300(self):
        features, performance = _synthetic(340)
        train_f, train_p = features[:300], performance[:300]
        exact = KCCAPredictor().fit(train_f, train_p)
        nystrom = KCCAPredictor(approximation="nystrom", rank=128).fit(
            train_f, train_p
        )
        predicted_exact = exact.predict(features[300:])
        predicted_nystrom = nystrom.predict(features[300:])
        assert np.allclose(predicted_nystrom, predicted_exact, rtol=0.25)
        relative = np.abs(predicted_nystrom - predicted_exact) / np.abs(
            predicted_exact
        )
        assert relative.mean() < 0.05

    def test_landmarks_deterministic_and_recorded(self):
        features, performance = _synthetic(150)
        kx = gaussian_kernel_matrix(np.log1p(features), 10.0)
        ky = gaussian_kernel_matrix(np.log1p(performance), 10.0)
        first = KCCA(approximation="nystrom", rank=40).fit(kx, ky)
        second = KCCA(approximation="nystrom", rank=40).fit(kx, ky)
        assert np.array_equal(first.landmarks, second.landmarks)
        assert first.landmarks.shape == (40,)
        assert np.array_equal(first.alpha, second.alpha)
        other_seed = KCCA(
            approximation="nystrom", rank=40, landmark_seed=1
        ).fit(kx, ky)
        assert not np.array_equal(first.landmarks, other_seed.landmarks)

    def test_invalid_configuration_rejected(self):
        with pytest.raises(ModelError):
            KCCA(approximation="cholesky")
        with pytest.raises(ModelError):
            KCCA(approximation="nystrom", rank=0)

    def test_nystrom_pipeline_artifact_roundtrip(self, tmp_path):
        features, performance = _synthetic(160)
        model = KCCAPredictor(approximation="nystrom", rank=64)
        pipeline = PredictionPipeline(model=model).fit(
            features[:140], performance[:140],
            optimizer_costs=performance[:140, 0],
        )
        path = tmp_path / "nystrom.npz"
        pipeline.save(path)

        loaded = PredictionPipeline.load(path)
        assert isinstance(loaded.model, KCCAPredictor)
        state = loaded.model.state_dict()
        assert state["config"]["approximation"] == "nystrom"
        assert state["config"]["rank"] == 64
        held_out = features[140:]
        assert np.array_equal(
            loaded.predict_many(held_out), pipeline.predict_many(held_out)
        )
        # The artifact manifest advertises the approximation for ops.
        with np.load(path, allow_pickle=False) as data:
            manifest = json.loads(
                bytes(data["__manifest__"].tobytes()).decode("utf-8")
            )
        assert manifest["artifact"]["kernel"]["approximation"] == "nystrom"

    def test_projection_cached_once_per_fit(self):
        features, performance = _synthetic(80)
        model = KCCAPredictor().fit(features, performance)
        first = model.query_projection
        assert model.query_projection is first  # no recompute per access


# ----------------------------------------------------------------------
# Rewritten numeric kernels
# ----------------------------------------------------------------------


class TestNumericRewrites:
    def test_gaussian_kernels_match_reference_formula(self, rng):
        data = rng.normal(size=(30, 5))
        new = rng.normal(size=(7, 5))
        tau = 2.5
        reference = np.exp(
            -((data[:, None, :] - data[None, :, :]) ** 2).sum(axis=2) / tau
        )
        np.fill_diagonal(reference, 1.0)
        assert np.allclose(gaussian_kernel_matrix(data, tau), reference)
        reference_cross = np.exp(
            -((new[:, None, :] - data[None, :, :]) ** 2).sum(axis=2) / tau
        )
        assert np.allclose(
            gaussian_kernel_cross(new, data, tau), reference_cross
        )

    def test_euclidean_neighbors_match_brute_force(self, rng):
        points = rng.normal(size=(9, 4))
        reference = rng.normal(size=(25, 4))
        indices, distances = nearest_neighbors(points, reference, k=3)
        brute = np.linalg.norm(
            points[:, None, :] - reference[None, :, :], axis=2
        )
        for i in range(points.shape[0]):
            expected = np.sort(np.round(brute[i], 9))[:3]
            assert np.allclose(distances[i], expected)
            assert set(indices[i]) <= set(np.argsort(brute[i])[:5])

    def test_cross_squared_distances_never_negative(self, rng):
        # Duplicated points stress the ||a||²+||b||²-2ab cancellation.
        data = np.repeat(rng.normal(size=(5, 3)), 4, axis=0)
        assert (cross_squared_distances(data, data) >= 0.0).all()


# ----------------------------------------------------------------------
# Benchmark harness
# ----------------------------------------------------------------------


class TestBenchHarness:
    def test_quick_run_emits_valid_report(self, tmp_path):
        out = tmp_path / "bench.json"
        report = run_benchmarks(quick=True, jobs=2, label="test", out=out)
        # The on-disk report is valid JSON and matches the return value.
        loaded = json.loads(out.read_text())
        assert loaded == json.loads(json.dumps(report))
        assert loaded["label"] == "test"
        assert loaded["machine"]["cpus"] >= 1
        runs = loaded["corpus_build"]["runs"]
        assert [run["jobs"] for run in runs] == [1, 2]
        assert runs[1]["identical_to_serial"] is True
        assert len(loaded["kcca_fit"]) == 2
        for row in loaded["kcca_fit"]:
            assert row["exact_seconds"] > 0
            assert row["nystrom_seconds"] > 0
            assert row["correlation_gap"] < 0.5
        for batch in loaded["predict_latency"]["batches"]:
            assert batch["p95_ms"] >= batch["p50_ms"] > 0
