"""Frozen copy of the legacy hard-coded template layer (pre-spec refactor).

This module is the *golden reference* for the spec refactor: the
hand-written samplers and the original ``generate_pool`` loop, copied
verbatim.  ``tests/test_workload_spec.py`` proves the spec-driven path
(``specs/tpcds.yaml`` / ``specs/customer.yaml``) renders bitwise-identical
query pools at the same seed.  Do not "fix" or modernise this file — its
whole value is staying byte-for-byte faithful to the legacy behaviour.
"""


from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.workloads.tpcds import (
    FIRST_YEAR,
    ITEM_CATEGORIES,
    N_YEARS,
    NATIONS,
)
from repro.rng import child_generator
from repro.workloads.customer import (
    ACCOUNT_TYPES,
    REGIONS,
    SEGMENTS,
    TXN_TYPES,
)

__all__ = [
    "QueryTemplate",
    "tpcds_templates",
    "problem_templates",
    "customer_templates",
    "generate_pool",
]

_N_DAYS = N_YEARS * 365
_LAST_YEAR = FIRST_YEAR + N_YEARS - 1


@dataclass(frozen=True)
class QueryTemplate:
    """A SQL text template plus a joint parameter sampler.

    Attributes:
        name: unique template identifier.
        sql: ``str.format`` template of the query text.
        sampler: draws a dict of parameter values from an rng.
        family: ``standard`` or ``problem``.
    """

    name: str
    sql: str
    sampler: Callable[[np.random.Generator], dict]
    family: str = "standard"

    def render(self, rng: np.random.Generator) -> tuple[str, dict]:
        """Instantiate the template; returns (sql_text, parameter_values)."""
        params = self.sampler(rng)
        return self.sql.format(**params), params


# ----------------------------------------------------------------------
# Sampling helpers
# ----------------------------------------------------------------------


def _year(rng: np.random.Generator) -> int:
    return int(rng.integers(FIRST_YEAR, _LAST_YEAR + 1))


def _date_window(
    rng: np.random.Generator, min_days: int, max_days: int
) -> tuple[int, int]:
    """A random [lo, hi] date_sk window of width in [min_days, max_days]."""
    width = int(rng.integers(min_days, max_days + 1))
    width = min(width, _N_DAYS)
    lo = int(rng.integers(1, _N_DAYS - width + 2))
    return lo, lo + width - 1


def _category_list(rng: np.random.Generator, min_n: int, max_n: int) -> str:
    count = int(rng.integers(min_n, max_n + 1))
    chosen = rng.choice(ITEM_CATEGORIES, size=count, replace=False)
    return ", ".join(f"'{c}'" for c in chosen)


def _quoted_choice(rng: np.random.Generator, values) -> str:
    return str(rng.choice(values))


# ----------------------------------------------------------------------
# Standard decision-support templates
# ----------------------------------------------------------------------


def tpcds_templates() -> list[QueryTemplate]:
    """The standard template mix (mostly feathers, some golf balls)."""
    templates: list[QueryTemplate] = []

    templates.append(QueryTemplate(
        name="category_sales_month",
        sql=(
            "SELECT i.i_category, sum(ss.ss_sales_price) AS revenue, "
            "count(*) AS cnt "
            "FROM store_sales ss, item i, date_dim d "
            "WHERE ss.ss_item_sk = i.i_item_sk "
            "AND ss.ss_sold_date_sk = d.d_date_sk "
            "AND d.d_year = {year} AND d.d_moy = {month} "
            "GROUP BY i.i_category ORDER BY revenue DESC"
        ),
        sampler=lambda rng: {
            "year": _year(rng), "month": int(rng.integers(1, 13))
        },
    ))

    templates.append(QueryTemplate(
        name="top_customers_year",
        sql=(
            "SELECT ss.ss_customer_sk, sum(ss.ss_net_profit) AS profit "
            "FROM store_sales ss, date_dim d "
            "WHERE ss.ss_sold_date_sk = d.d_date_sk AND d.d_year = {year} "
            "GROUP BY ss.ss_customer_sk ORDER BY profit DESC LIMIT {limit}"
        ),
        sampler=lambda rng: {
            "year": _year(rng), "limit": int(rng.choice([50, 100, 250]))
        },
    ))

    templates.append(QueryTemplate(
        name="promo_channel_web",
        sql=(
            "SELECT p.p_channel, count(*) AS cnt, "
            "avg(ws.ws_sales_price) AS avg_price "
            "FROM web_sales ws, promotion p "
            "WHERE ws.ws_promo_sk = p.p_promo_sk AND p.p_cost > {cost} "
            "GROUP BY p.p_channel ORDER BY cnt DESC"
        ),
        sampler=lambda rng: {"cost": round(float(rng.uniform(100, 2000)), 2)},
    ))

    templates.append(QueryTemplate(
        name="store_state_quarter",
        sql=(
            "SELECT s.s_state, sum(ss.ss_net_profit) AS profit, "
            "count(*) AS cnt "
            "FROM store_sales ss, store s, date_dim d "
            "WHERE ss.ss_store_sk = s.s_store_sk "
            "AND ss.ss_sold_date_sk = d.d_date_sk "
            "AND d.d_year = {year} AND d.d_qoy = {quarter} "
            "GROUP BY s.s_state ORDER BY profit DESC"
        ),
        sampler=lambda rng: {
            "year": _year(rng), "quarter": int(rng.integers(1, 5))
        },
    ))

    templates.append(QueryTemplate(
        name="price_band_items",
        sql=(
            "SELECT i.i_category, count(*) AS cnt, "
            "avg(i.i_current_price) AS avg_price "
            "FROM item i "
            "WHERE i.i_current_price BETWEEN {lo} AND {hi} "
            "GROUP BY i.i_category"
        ),
        sampler=lambda rng: (lambda lo: {
            "lo": round(lo, 2), "hi": round(lo + float(rng.uniform(5, 60)), 2)
        })(float(rng.uniform(1, 60))),
    ))

    templates.append(QueryTemplate(
        name="monthly_web_quantity",
        sql=(
            "SELECT d.d_moy, sum(ws.ws_quantity) AS qty, "
            "count(*) AS orders "
            "FROM web_sales ws, date_dim d "
            "WHERE ws.ws_sold_date_sk = d.d_date_sk AND d.d_year = {year} "
            "GROUP BY d.d_moy ORDER BY d.d_moy"
        ),
        sampler=lambda rng: {"year": _year(rng)},
    ))

    templates.append(QueryTemplate(
        name="warehouse_catalog_profit",
        sql=(
            "SELECT w.w_state, sum(cs.cs_net_profit) AS profit "
            "FROM catalog_sales cs, warehouse w, date_dim d "
            "WHERE cs.cs_warehouse_sk = w.w_warehouse_sk "
            "AND cs.cs_sold_date_sk = d.d_date_sk AND d.d_year = {year} "
            "GROUP BY w.w_state ORDER BY profit DESC"
        ),
        sampler=lambda rng: {"year": _year(rng)},
    ))

    templates.append(QueryTemplate(
        name="returns_by_class",
        sql=(
            "SELECT i.i_class, count(*) AS return_cnt, "
            "sum(sr.sr_return_amt) AS amount "
            "FROM store_returns sr, item i "
            "WHERE sr.sr_item_sk = i.i_item_sk "
            "AND i.i_category = '{category}' "
            "GROUP BY i.i_class ORDER BY amount DESC"
        ),
        sampler=lambda rng: {
            "category": _quoted_choice(rng, ITEM_CATEGORIES)
        },
    ))

    templates.append(QueryTemplate(
        name="nation_customer_income",
        sql=(
            "SELECT c.c_nation, count(*) AS cnt, "
            "avg(c.c_income) AS avg_income "
            "FROM customer c "
            "WHERE c.c_birth_year BETWEEN {ylo} AND {yhi} "
            "GROUP BY c.c_nation ORDER BY cnt DESC"
        ),
        sampler=lambda rng: (lambda ylo: {
            "ylo": ylo, "yhi": ylo + int(rng.integers(5, 25))
        })(int(rng.integers(1930, 1975))),
    ))

    templates.append(QueryTemplate(
        name="inventory_by_state",
        sql=(
            "SELECT w.w_state, sum(inv.inv_quantity_on_hand) AS qty "
            "FROM inventory inv, warehouse w "
            "WHERE inv.inv_warehouse_sk = w.w_warehouse_sk "
            "AND inv.inv_date_sk BETWEEN {lo} AND {hi} "
            "GROUP BY w.w_state ORDER BY qty DESC"
        ),
        sampler=lambda rng: dict(
            zip(("lo", "hi"), _date_window(rng, 14, 400))
        ),
    ))

    templates.append(QueryTemplate(
        name="in_subquery_category_sales",
        sql=(
            "SELECT sum(ss.ss_sales_price) AS revenue, count(*) AS cnt "
            "FROM store_sales ss "
            "WHERE ss.ss_item_sk IN "
            "(SELECT i.i_item_sk FROM item i "
            "WHERE i.i_category = '{category}' "
            "AND i.i_current_price > {price})"
        ),
        sampler=lambda rng: {
            "category": _quoted_choice(rng, ITEM_CATEGORIES),
            "price": round(float(rng.uniform(5, 80)), 2),
        },
    ))

    templates.append(QueryTemplate(
        name="exists_profitable_customers",
        sql=(
            "SELECT c.c_nation, count(*) AS cnt "
            "FROM customer c "
            "WHERE EXISTS (SELECT * FROM store_sales ss "
            "WHERE ss.ss_customer_sk = c.c_customer_sk "
            "AND ss.ss_net_profit > {profit}) "
            "GROUP BY c.c_nation ORDER BY cnt DESC"
        ),
        sampler=lambda rng: {"profit": round(float(rng.uniform(10, 400)), 2)},
    ))

    templates.append(QueryTemplate(
        name="not_exists_web_customers",
        sql=(
            "SELECT count(*) AS silent_customers "
            "FROM customer c "
            "WHERE c.c_nation = '{nation}' "
            "AND NOT EXISTS (SELECT * FROM web_sales ws "
            "WHERE ws.ws_customer_sk = c.c_customer_sk "
            "AND ws.ws_sold_date_sk BETWEEN {lo} AND {hi})"
        ),
        sampler=lambda rng: {
            "nation": _quoted_choice(rng, NATIONS),
            **dict(zip(("lo", "hi"), _date_window(rng, 90, 720))),
        },
    ))

    templates.append(QueryTemplate(
        name="sales_detail_window",
        sql=(
            "SELECT ss.ss_item_sk, ss.ss_sales_price, ss.ss_quantity "
            "FROM store_sales ss "
            "WHERE ss.ss_sold_date_sk BETWEEN {lo} AND {hi} "
            "AND ss.ss_sales_price > {price} "
            "ORDER BY ss.ss_sales_price DESC LIMIT {limit}"
        ),
        sampler=lambda rng: {
            **dict(zip(("lo", "hi"), _date_window(rng, 7, 120))),
            "price": round(float(rng.uniform(5, 50)), 2),
            "limit": int(rng.choice([10, 100, 1000])),
        },
    ))

    templates.append(QueryTemplate(
        name="brand_quarter_report",
        sql=(
            "SELECT i.i_brand, sum(cs.cs_sales_price) AS revenue "
            "FROM catalog_sales cs, item i, date_dim d "
            "WHERE cs.cs_item_sk = i.i_item_sk "
            "AND cs.cs_sold_date_sk = d.d_date_sk "
            "AND d.d_year = {year} AND d.d_qoy = {quarter} "
            "GROUP BY i.i_brand ORDER BY revenue DESC LIMIT 50"
        ),
        sampler=lambda rng: {
            "year": _year(rng), "quarter": int(rng.integers(1, 5))
        },
    ))

    templates.append(QueryTemplate(
        name="preferred_customer_profit",
        sql=(
            "SELECT c.c_preferred, avg(ss.ss_net_profit) AS avg_profit, "
            "count(*) AS cnt "
            "FROM store_sales ss, customer c "
            "WHERE ss.ss_customer_sk = c.c_customer_sk "
            "AND c.c_income > {income} "
            "GROUP BY c.c_preferred"
        ),
        sampler=lambda rng: {
            "income": round(float(rng.uniform(20_000, 90_000)), 2)
        },
    ))

    templates.append(QueryTemplate(
        name="distinct_brands_sold",
        sql=(
            "SELECT DISTINCT i.i_brand, i.i_category "
            "FROM store_sales ss, item i "
            "WHERE ss.ss_item_sk = i.i_item_sk "
            "AND ss.ss_sold_date_sk BETWEEN {lo} AND {hi} "
            "AND i.i_current_price > {price}"
        ),
        sampler=lambda rng: {
            **dict(zip(("lo", "hi"), _date_window(rng, 14, 180))),
            "price": round(float(rng.uniform(10, 70)), 2),
        },
    ))

    templates.append(QueryTemplate(
        name="dow_sales_profile",
        sql=(
            "SELECT d.d_day_name, count(*) AS cnt, "
            "sum(ss.ss_sales_price) AS revenue "
            "FROM store_sales ss, date_dim d "
            "WHERE ss.ss_sold_date_sk = d.d_date_sk "
            "AND d.d_year = {year} AND d.d_moy BETWEEN {mlo} AND {mhi} "
            "GROUP BY d.d_day_name ORDER BY revenue DESC"
        ),
        sampler=lambda rng: (lambda mlo: {
            "year": _year(rng), "mlo": mlo,
            "mhi": min(mlo + int(rng.integers(0, 6)), 12),
        })(int(rng.integers(1, 13))),
    ))

    templates.append(QueryTemplate(
        name="store_vs_web_by_item_class",
        sql=(
            "SELECT i.i_class, sum(ws.ws_sales_price) AS web_rev "
            "FROM web_sales ws, item i, date_dim d "
            "WHERE ws.ws_item_sk = i.i_item_sk "
            "AND ws.ws_sold_date_sk = d.d_date_sk "
            "AND i.i_category IN ({cats}) AND d.d_year = {year} "
            "GROUP BY i.i_class ORDER BY web_rev DESC"
        ),
        sampler=lambda rng: {
            "cats": _category_list(rng, 1, 3), "year": _year(rng)
        },
    ))

    templates.append(QueryTemplate(
        name="high_quantity_catalog_orders",
        sql=(
            "SELECT cs.cs_customer_sk, count(*) AS orders, "
            "sum(cs.cs_quantity) AS units "
            "FROM catalog_sales cs "
            "WHERE cs.cs_quantity > {qty} "
            "AND cs.cs_sold_date_sk BETWEEN {lo} AND {hi} "
            "GROUP BY cs.cs_customer_sk "
            "HAVING count(*) > {min_orders} "
            "ORDER BY units DESC LIMIT 100"
        ),
        sampler=lambda rng: {
            "qty": int(rng.integers(20, 38)),
            **dict(zip(("lo", "hi"), _date_window(rng, 30, 365))),
            "min_orders": int(rng.integers(1, 4)),
        },
    ))

    return templates


# ----------------------------------------------------------------------
# Problem-query templates (golf balls and bowling balls)
# ----------------------------------------------------------------------


def problem_templates() -> list[QueryTemplate]:
    """Heavy templates modelled on the paper's customer problem queries."""
    templates: list[QueryTemplate] = []

    templates.append(QueryTemplate(
        name="problem_tri_channel_item",
        family="problem",
        sql=(
            "SELECT i.i_manufact_id, sum(ss.ss_sales_price) AS revenue, "
            "count(*) AS cnt "
            "FROM store_sales ss, catalog_sales cs, web_sales ws, item i "
            "WHERE ss.ss_item_sk = i.i_item_sk "
            "AND cs.cs_item_sk = i.i_item_sk "
            "AND ws.ws_item_sk = i.i_item_sk "
            "AND i.i_category IN ({cats}) "
            "AND ss.ss_sold_date_sk BETWEEN {lo} AND {hi} "
            "GROUP BY i.i_manufact_id ORDER BY revenue DESC"
        ),
        sampler=lambda rng: {
            "cats": _category_list(rng, 2, 8),
            **dict(zip(("lo", "hi"), _date_window(rng, 540, _N_DAYS))),
        },
    ))

    templates.append(QueryTemplate(
        name="problem_repeat_customers",
        family="problem",
        sql=(
            "SELECT ss1.ss_store_sk, count(*) AS pair_cnt, "
            "sum(ss2.ss_sales_price) AS rev "
            "FROM store_sales ss1, store_sales ss2 "
            "WHERE ss1.ss_customer_sk = ss2.ss_customer_sk "
            "AND ss1.ss_sold_date_sk BETWEEN {lo} AND {hi} "
            "AND ss2.ss_sold_date_sk BETWEEN {lo2} AND {hi2} "
            "AND ss1.ss_net_profit > {profit} "
            "GROUP BY ss1.ss_store_sk ORDER BY pair_cnt DESC"
        ),
        sampler=lambda rng: {
            **dict(zip(("lo", "hi"), _date_window(rng, 180, _N_DAYS))),
            **dict(zip(("lo2", "hi2"), _date_window(rng, 180, _N_DAYS))),
            "profit": round(float(rng.uniform(-50, 60)), 2),
        },
    ))

    templates.append(QueryTemplate(
        name="problem_item_affinity",
        family="problem",
        sql=(
            "SELECT ss1.ss_item_sk, count(*) AS together "
            "FROM store_sales ss1, store_sales ss2 "
            "WHERE ss1.ss_item_sk = ss2.ss_item_sk "
            "AND ss1.ss_store_sk <> ss2.ss_store_sk "
            "AND ss1.ss_sold_date_sk BETWEEN {lo} AND {hi} "
            "AND ss2.ss_sold_date_sk BETWEEN {lo2} AND {hi2} "
            "GROUP BY ss1.ss_item_sk ORDER BY together DESC LIMIT 500"
        ),
        sampler=lambda rng: {
            **dict(zip(("lo", "hi"), _date_window(rng, 365, _N_DAYS))),
            **dict(zip(("lo2", "hi2"), _date_window(rng, 365, _N_DAYS))),
        },
    ))

    templates.append(QueryTemplate(
        name="problem_price_theta",
        family="problem",
        sql=(
            "SELECT i1.i_category, count(*) AS rivals "
            "FROM item i1, item i2 "
            "WHERE i1.i_current_price > i2.i_current_price * {factor} "
            "AND i1.i_category IN ({cats1}) "
            "AND i2.i_category IN ({cats2}) "
            "GROUP BY i1.i_category ORDER BY rivals DESC"
        ),
        sampler=lambda rng: {
            "factor": round(float(rng.uniform(4.0, 7.0)), 2),
            "cats1": _category_list(rng, 2, 3),
            "cats2": _category_list(rng, 2, 3),
        },
    ))

    templates.append(QueryTemplate(
        name="problem_big_sort",
        family="problem",
        sql=(
            "SELECT ss.ss_item_sk, ss.ss_sales_price * cs.cs_quantity AS v "
            "FROM store_sales ss, catalog_sales cs "
            "WHERE ss.ss_item_sk = cs.cs_item_sk "
            "AND ss.ss_sold_date_sk BETWEEN {lo} AND {hi} "
            "AND cs.cs_sold_date_sk BETWEEN {lo2} AND {hi2} "
            "ORDER BY v DESC LIMIT {limit}"
        ),
        sampler=lambda rng: {
            **dict(zip(("lo", "hi"), _date_window(rng, 240, _N_DAYS))),
            **dict(zip(("lo2", "hi2"), _date_window(rng, 240, _N_DAYS))),
            "limit": int(rng.choice([1000, 10000])),
        },
    ))

    templates.append(QueryTemplate(
        name="problem_cross_channel_customer",
        family="problem",
        sql=(
            "SELECT c.c_nation, count(*) AS cnt, "
            "sum(ss.ss_sales_price) AS store_rev, "
            "sum(ws.ws_sales_price) AS web_rev "
            "FROM store_sales ss, web_sales ws, customer c "
            "WHERE ss.ss_customer_sk = ws.ws_customer_sk "
            "AND ss.ss_customer_sk = c.c_customer_sk "
            "AND ss.ss_sold_date_sk BETWEEN {lo} AND {hi} "
            "GROUP BY c.c_nation ORDER BY cnt DESC"
        ),
        sampler=lambda rng: dict(
            zip(("lo", "hi"), _date_window(rng, 180, _N_DAYS))
        ),
    ))

    templates.append(QueryTemplate(
        name="problem_inventory_pressure",
        family="problem",
        sql=(
            "SELECT i.i_category, sum(inv.inv_quantity_on_hand) AS stock, "
            "count(*) AS cnt "
            "FROM inventory inv, store_sales ss, item i "
            "WHERE inv.inv_item_sk = ss.ss_item_sk "
            "AND ss.ss_item_sk = i.i_item_sk "
            "AND inv.inv_date_sk BETWEEN {lo} AND {hi} "
            "AND ss.ss_quantity > {qty} "
            "GROUP BY i.i_category ORDER BY stock DESC"
        ),
        sampler=lambda rng: {
            **dict(zip(("lo", "hi"), _date_window(rng, 60, 1000))),
            "qty": int(rng.integers(5, 35)),
        },
    ))

    templates.append(QueryTemplate(
        name="problem_returns_blowup",
        family="problem",
        sql=(
            "SELECT sr.sr_customer_sk, count(*) AS cnt, "
            "sum(sr.sr_return_amt) AS returned "
            "FROM store_returns sr, store_sales ss "
            "WHERE sr.sr_item_sk = ss.ss_item_sk "
            "AND ss.ss_sold_date_sk BETWEEN {lo} AND {hi} "
            "GROUP BY sr.sr_customer_sk "
            "HAVING sum(sr.sr_return_amt) > {amt} "
            "ORDER BY returned DESC"
        ),
        sampler=lambda rng: {
            **dict(zip(("lo", "hi"), _date_window(rng, 120, _N_DAYS))),
            "amt": round(float(rng.uniform(50, 500)), 2),
        },
    ))

    return templates


# ----------------------------------------------------------------------
# Customer workload templates (legacy copy)
# ----------------------------------------------------------------------


def customer_templates() -> list[QueryTemplate]:
    """Short-running queries against the customer schema."""
    templates: list[QueryTemplate] = []

    templates.append(QueryTemplate(
        name="cust_branch_balances",
        sql=(
            "SELECT b.b_region, sum(a.a_balance) AS total, count(*) AS cnt "
            "FROM account a, branch b "
            "WHERE a.a_branch_sk = b.b_branch_sk AND a.a_type = '{atype}' "
            "GROUP BY b.b_region ORDER BY total DESC"
        ),
        sampler=lambda rng: {"atype": str(rng.choice(ACCOUNT_TYPES))},
    ))

    templates.append(QueryTemplate(
        name="cust_monthly_txn_volume",
        sql=(
            "SELECT cal.cal_month, count(*) AS cnt, "
            "sum(t.t_amount) AS volume "
            "FROM txn t, calendar cal "
            "WHERE t.t_date_sk = cal.cal_date_sk "
            "AND cal.cal_year = {year} AND t.t_type = '{ttype}' "
            "GROUP BY cal.cal_month ORDER BY cal.cal_month"
        ),
        sampler=lambda rng: {
            "year": int(rng.choice([2007, 2008])),
            "ttype": str(rng.choice(TXN_TYPES)),
        },
    ))

    templates.append(QueryTemplate(
        name="cust_segment_scores",
        sql=(
            "SELECT cl.cl_segment, avg(cl.cl_score) AS avg_score, "
            "count(*) AS cnt "
            "FROM client cl "
            "WHERE cl.cl_birth_year BETWEEN {ylo} AND {yhi} "
            "GROUP BY cl.cl_segment ORDER BY avg_score DESC"
        ),
        sampler=lambda rng: (lambda ylo: {
            "ylo": ylo, "yhi": ylo + int(rng.integers(10, 30))
        })(int(rng.integers(1935, 1975))),
    ))

    templates.append(QueryTemplate(
        name="cust_rich_clients",
        sql=(
            "SELECT cl.cl_client_sk, sum(a.a_balance) AS wealth "
            "FROM account a, client cl "
            "WHERE a.a_client_sk = cl.cl_client_sk "
            "AND cl.cl_segment = '{segment}' "
            "GROUP BY cl.cl_client_sk ORDER BY wealth DESC LIMIT {limit}"
        ),
        sampler=lambda rng: {
            "segment": str(rng.choice(SEGMENTS)),
            "limit": int(rng.choice([10, 50, 100])),
        },
    ))

    templates.append(QueryTemplate(
        name="cust_big_txns",
        sql=(
            "SELECT t.t_type, count(*) AS cnt, max(t.t_amount) AS biggest "
            "FROM txn t "
            "WHERE t.t_amount > {amount} "
            "AND t.t_date_sk BETWEEN {lo} AND {hi} "
            "GROUP BY t.t_type ORDER BY cnt DESC"
        ),
        sampler=lambda rng: (lambda lo: {
            "amount": round(float(rng.uniform(200, 3000)), 2),
            "lo": lo,
            "hi": lo + int(rng.integers(14, 180)),
        })(int(rng.integers(1, 500))),
    ))

    templates.append(QueryTemplate(
        name="cust_branch_activity",
        sql=(
            "SELECT b.b_city, count(*) AS txns "
            "FROM txn t, account a, branch b "
            "WHERE t.t_account_sk = a.a_account_sk "
            "AND a.a_branch_sk = b.b_branch_sk "
            "AND b.b_region = '{region}' "
            "AND t.t_amount > {amount} "
            "GROUP BY b.b_city ORDER BY txns DESC"
        ),
        sampler=lambda rng: {
            "region": str(rng.choice(REGIONS)),
            "amount": round(float(rng.uniform(50, 800)), 2),
        },
    ))

    templates.append(QueryTemplate(
        name="cust_dormant_accounts",
        sql=(
            "SELECT count(*) AS dormant "
            "FROM account a "
            "WHERE a.a_open_year < {year} "
            "AND NOT EXISTS (SELECT * FROM txn t "
            "WHERE t.t_account_sk = a.a_account_sk "
            "AND t.t_date_sk > {date})"
        ),
        sampler=lambda rng: {
            "year": int(rng.integers(1998, 2006)),
            "date": int(rng.integers(365, 700)),
        },
    ))

    templates.append(QueryTemplate(
        name="cust_loan_clients_in",
        sql=(
            "SELECT count(*) AS cnt, avg(cl.cl_score) AS avg_score "
            "FROM client cl "
            "WHERE cl.cl_client_sk IN (SELECT a.a_client_sk FROM account a "
            "WHERE a.a_type = 'loan' AND a.a_balance > {balance})"
        ),
        sampler=lambda rng: {
            "balance": round(float(rng.uniform(1000, 20000)), 2)
        },
    ))

    return templates


# ----------------------------------------------------------------------
# Legacy pool generation loop (pre-spec generator.py)
# ----------------------------------------------------------------------


def generate_pool(n_queries, seed=7, templates=None, problem_fraction=0.25):
    """The original generate_pool loop, returning plain dicts."""
    if templates is None:
        standard = tpcds_templates()
        problems = problem_templates()
    else:
        standard = [t for t in templates if t.family != "problem"]
        problems = [t for t in templates if t.family == "problem"]
    rng = child_generator(seed, "query-pool")
    instances = []
    for index in range(n_queries):
        if problems and (not standard or rng.random() < problem_fraction):
            template = problems[int(rng.integers(0, len(problems)))]
        else:
            template = standard[int(rng.integers(0, len(standard)))]
        sql, params = template.render(rng)
        instances.append(
            {
                "query_id": f"q{index:05d}_{template.name}",
                "sql": sql,
                "template": template.name,
                "family": template.family,
                "params": params,
            }
        )
    return instances
