"""Tests for neighbours, accuracy metrics, predictor, two-step, confidence."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.confidence import ConfidenceModel, neighbor_confidence
from repro.core.metrics import (
    classification_accuracy,
    confusion_matrix,
    predictive_risk,
    predictive_risk_without_outliers,
    within_factor_fraction,
    within_fraction,
)
from repro.core.neighbors import combine_neighbors, nearest_neighbors
from repro.core.predictor import KCCAPredictor
from repro.core.two_step import TwoStepPredictor
from repro.errors import ModelError, NotFittedError


class TestNearestNeighbors:
    def test_nearest_first(self):
        reference = np.array([[0.0], [1.0], [10.0]])
        indices, distances = nearest_neighbors(np.array([[0.2]]), reference, 2)
        assert list(indices[0]) == [0, 1]
        assert distances[0][0] == pytest.approx(0.2)

    def test_k_clamped_to_reference_size(self):
        reference = np.array([[0.0], [1.0]])
        indices, _ = nearest_neighbors(np.array([[0.0]]), reference, 10)
        assert indices.shape == (1, 2)

    def test_cosine_vs_euclidean_differ(self):
        reference = np.array([[1.0, 0.0], [8.0, 0.5]])
        point = np.array([[5.0, 0.0]])
        euclid, _ = nearest_neighbors(point, reference, 1, "euclidean")
        cosine, _ = nearest_neighbors(point, reference, 1, "cosine")
        assert euclid[0][0] == 1  # magnitude-wise closer to [8, .5]
        assert cosine[0][0] == 0  # direction-wise identical to [1, 0]

    def test_batch_queries(self):
        reference = np.arange(10, dtype=float).reshape(-1, 1)
        points = np.array([[0.1], [8.9]])
        indices, _ = nearest_neighbors(points, reference, 1)
        assert list(indices[:, 0]) == [0, 9]

    def test_invalid_metric(self):
        with pytest.raises(ModelError):
            nearest_neighbors(np.ones((1, 2)), np.ones((3, 2)), 1, "manhattan")

    def test_invalid_k(self):
        with pytest.raises(ModelError):
            nearest_neighbors(np.ones((1, 2)), np.ones((3, 2)), 0)

    @given(
        st.lists(st.floats(-100, 100), min_size=4, max_size=30),
        st.floats(-100, 100),
    )
    @settings(max_examples=40, deadline=None)
    def test_distances_sorted(self, reference_values, query_value):
        reference = np.array(reference_values).reshape(-1, 1)
        _idx, distances = nearest_neighbors(
            np.array([[query_value]]), reference, 3
        )
        assert list(distances[0]) == sorted(distances[0])


class TestCombineNeighbors:
    def test_equal_weighting_is_mean(self):
        values = np.array([[1.0, 10.0], [3.0, 30.0], [5.0, 50.0]])
        combined = combine_neighbors(values, np.array([0.1, 0.2, 0.3]))
        assert np.allclose(combined, [3.0, 30.0])

    def test_ranked_weighting(self):
        values = np.array([[1.0], [2.0], [3.0]])
        combined = combine_neighbors(
            values, np.array([0.1, 0.2, 0.3]), weighting="ranked"
        )
        # 3:2:1 weights -> (3*1 + 2*2 + 1*3) / 6
        assert combined[0] == pytest.approx(10 / 6)

    def test_distance_weighting_prefers_nearest(self):
        values = np.array([[0.0], [100.0]])
        combined = combine_neighbors(
            values, np.array([0.01, 10.0]), weighting="distance"
        )
        assert combined[0] < 1.0

    def test_unknown_weighting(self):
        with pytest.raises(ModelError):
            combine_neighbors(np.ones((2, 1)), np.ones(2), weighting="magic")

    def test_average_of_nonnegative_is_nonnegative(self):
        """The structural guarantee the paper contrasts with regression."""
        rng = np.random.default_rng(0)
        values = rng.uniform(0, 100, size=(3, 6))
        for weighting in ("equal", "ranked", "distance"):
            combined = combine_neighbors(
                values, np.array([0.1, 0.2, 0.3]), weighting
            )
            assert (combined >= 0).all()


class TestAccuracyMetrics:
    def test_perfect_prediction_risk_one(self):
        actual = np.array([1.0, 5.0, 9.0])
        assert predictive_risk(actual, actual) == pytest.approx(1.0)

    def test_mean_prediction_risk_zero(self):
        actual = np.array([1.0, 5.0, 9.0])
        predicted = np.full(3, actual.mean())
        assert predictive_risk(predicted, actual) == pytest.approx(0.0)

    def test_bad_prediction_negative(self):
        actual = np.array([1.0, 2.0, 3.0])
        predicted = np.array([100.0, -50.0, 30.0])
        assert predictive_risk(predicted, actual) < 0

    def test_degenerate_actuals_nan(self):
        assert np.isnan(predictive_risk(np.ones(3), np.ones(3)))

    def test_outlier_removal_improves(self):
        actual = np.arange(10, dtype=float)
        predicted = actual.copy()
        predicted[0] = 1000.0
        with_outlier = predictive_risk(predicted, actual)
        without = predictive_risk_without_outliers(predicted, actual, drop=1)
        assert without > with_outlier
        assert without == pytest.approx(1.0)

    def test_outlier_drop_validation(self):
        with pytest.raises(ModelError):
            predictive_risk_without_outliers(np.ones(3), np.ones(3), drop=3)

    def test_within_fraction(self):
        actual = np.array([100.0, 100.0, 100.0, 100.0])
        predicted = np.array([81.0, 119.0, 150.0, 100.0])
        assert within_fraction(predicted, actual, 0.2) == pytest.approx(0.75)

    def test_within_fraction_zero_actual(self):
        assert within_fraction(np.array([0.0]), np.array([0.0]), 0.2) == 1.0
        assert within_fraction(np.array([5.0]), np.array([0.0]), 0.2) == 0.0

    def test_within_factor(self):
        actual = np.array([1.0, 1.0, 1.0])
        predicted = np.array([5.0, 20.0, 0.5])
        assert within_factor_fraction(predicted, actual, 10.0) == pytest.approx(
            2 / 3
        )

    def test_confusion_matrix(self):
        matrix = confusion_matrix(
            ["a", "b", "a"], ["a", "a", "b"], labels=["a", "b"]
        )
        assert matrix[0, 0] == 1  # actual a predicted a
        assert matrix[0, 1] == 1  # actual a predicted b
        assert matrix[1, 0] == 1  # actual b predicted a

    def test_classification_accuracy(self):
        assert classification_accuracy(["x", "y"], ["x", "x"]) == 0.5

    @given(
        st.lists(st.floats(0.1, 1000), min_size=3, max_size=50),
    )
    @settings(max_examples=40, deadline=None)
    def test_risk_of_perfect_prediction_is_max(self, values):
        """Property: no prediction scores above the perfect prediction."""
        actual = np.array(values)
        if np.var(actual) == 0:
            return
        perfect = predictive_risk(actual, actual)
        noisy = predictive_risk(actual * 1.1, actual)
        assert perfect == pytest.approx(1.0)
        assert noisy <= perfect + 1e-12


def make_synthetic(n=250, n_test=40, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, (n + n_test, 6))
    base = np.exp(3 * x[:, 0]) + 5 * x[:, 1] * x[:, 2] + 0.5
    y = np.column_stack(
        [base, base * 7, np.sqrt(base), base**1.2, base + 3, base * 0.1]
    )
    return (x[:n], y[:n]), (x[n:], y[n:])


class TestKCCAPredictor:
    def test_end_to_end_accuracy(self):
        (x, y), (xt, yt) = make_synthetic()
        model = KCCAPredictor(log_features=False).fit(x, y)
        predicted = model.predict(xt)
        assert predictive_risk(predicted[:, 0], yt[:, 0]) > 0.6

    def test_predicts_all_metrics_simultaneously(self):
        (x, y), (xt, yt) = make_synthetic()
        model = KCCAPredictor(log_features=False).fit(x, y)
        predicted = model.predict(xt)
        assert predicted.shape == yt.shape
        for column in range(y.shape[1]):
            assert predictive_risk(predicted[:, column], yt[:, column]) > 0.3

    def test_predictions_never_negative(self):
        (x, y), (xt, _yt) = make_synthetic()
        model = KCCAPredictor(log_features=False).fit(x, y)
        assert (model.predict(xt) >= 0).all()

    def test_single_query_prediction(self):
        (x, y), (xt, _) = make_synthetic()
        model = KCCAPredictor(log_features=False).fit(x, y)
        prediction = model.predict(xt[0])
        assert prediction.shape == (1, 6)

    def test_detailed_prediction_has_neighbors(self):
        (x, y), (xt, _) = make_synthetic()
        model = KCCAPredictor(log_features=False, k_neighbors=3).fit(x, y)
        details = model.predict_detailed(xt[:5])
        assert len(details) == 5
        for detail in details:
            assert len(detail.neighbor_indices) == 3
            assert detail.confidence_distance >= 0
            # The prediction is the equal-weight neighbour average.
            expected = y[detail.neighbor_indices].mean(axis=0)
            assert np.allclose(detail.prediction, expected)

    def test_projection_shape(self):
        (x, y), (xt, _) = make_synthetic()
        model = KCCAPredictor(log_features=False, n_components=4).fit(x, y)
        assert model.project(xt).shape == (len(xt), 4)
        assert model.query_projection.shape == (len(x), 4)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            KCCAPredictor().predict(np.ones((1, 4)))

    def test_training_set_too_small(self):
        with pytest.raises(ModelError):
            KCCAPredictor(k_neighbors=3).fit(np.ones((3, 2)), np.ones((3, 6)))

    def test_shape_mismatch(self):
        with pytest.raises(ModelError):
            KCCAPredictor().fit(np.ones((10, 2)), np.ones((9, 6)))

    def test_explicit_tau_respected(self):
        (x, y), (xt, _) = make_synthetic(n=60, n_test=5)
        model = KCCAPredictor(
            log_features=False, query_tau=5.0, performance_tau=5.0
        ).fit(x, y)
        assert model._tau_x == 5.0

    def test_neighbor_params_changeable_after_fit(self):
        (x, y), (xt, yt) = make_synthetic()
        model = KCCAPredictor(log_features=False).fit(x, y)
        model.k_neighbors = 5
        predicted = model.predict(xt)
        assert predicted.shape == yt.shape


class TestTwoStepPredictor:
    def make_categorised(self, seed=0):
        """Synthetic data whose elapsed time spans all three categories."""
        rng = np.random.default_rng(seed)
        n = 300
        x = rng.uniform(0, 1, (n, 5))
        # Category driven by x0: feathers, golf balls, bowling balls.
        elapsed = np.where(
            x[:, 0] < 0.6,
            rng.uniform(1, 100, n),
            np.where(
                x[:, 0] < 0.85,
                rng.uniform(200, 1500, n),
                rng.uniform(2000, 6000, n),
            ),
        )
        y = np.column_stack(
            [
                elapsed,
                elapsed * 100,
                elapsed * 50,
                np.zeros(n),
                elapsed * 2,
                elapsed * 300,
            ]
        )
        return x, y

    def test_classification_mostly_correct(self):
        from repro.workloads.categories import categorize

        x, y = self.make_categorised()
        model = TwoStepPredictor(log_features=False).fit(x[:250], y[:250])
        labels = model.classify(x[250:])
        actual = [categorize(e) for e in y[250:, 0]]
        accuracy = np.mean([p == a for p, a in zip(labels, actual)])
        assert accuracy > 0.7

    def test_specialists_created_for_large_categories(self):
        x, y = self.make_categorised()
        model = TwoStepPredictor(log_features=False).fit(x, y)
        assert len(model.trained_categories) >= 2

    def test_predict_shape(self):
        x, y = self.make_categorised()
        model = TwoStepPredictor(log_features=False).fit(x[:250], y[:250])
        assert model.predict(x[250:]).shape == (50, 6)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            TwoStepPredictor().predict(np.ones((1, 5)))

    def test_small_categories_fall_back_to_router(self):
        rng = np.random.default_rng(0)
        x = rng.uniform(0, 1, (50, 3))
        y = np.column_stack([rng.uniform(1, 10, 50)] * 6)  # all feathers
        model = TwoStepPredictor(log_features=False).fit(x, y)
        prediction = model.predict(x[:3])
        assert prediction.shape == (3, 6)


class TestConfidence:
    def test_inlier_vs_outlier(self):
        (x, y), (_xt, _yt) = make_synthetic()
        model = KCCAPredictor(log_features=False).fit(x, y)
        inlier = x[0][None, :]
        outlier = np.full((1, 6), 50.0)  # far outside the unit cube
        reports = neighbor_confidence(model, np.vstack([inlier, outlier]))
        assert reports[0].distance < reports[1].distance
        assert not reports[0].anomalous
        assert reports[1].zscore > reports[0].zscore

    def test_threshold_validation(self):
        (x, y), _ = make_synthetic(n=50, n_test=1)
        model = KCCAPredictor(log_features=False).fit(x, y)
        with pytest.raises(ModelError):
            ConfidenceModel(model, threshold=0.0)

    def test_training_points_not_anomalous(self):
        (x, y), _ = make_synthetic(n=80, n_test=1)
        model = KCCAPredictor(log_features=False).fit(x, y)
        reports = ConfidenceModel(model).assess(x[:20])
        assert sum(r.anomalous for r in reports) <= 2
