"""Deadline budgets and the tiered degradation ladder.

Unit drills for the two quality levers the self-healing serving stack
pulls before it ever drops a request:

* :class:`~repro.resilience.deadline.Deadline` — monotonic budgets with
  per-stage accounting and cooperative cancellation.  A spent budget is
  a structured :class:`~repro.errors.DeadlineExceededError` (the daemon
  maps it to 504), never a silently late answer and never a partially
  computed one.
* :class:`~repro.serve.degrade.DegradeController` — the hysteretic tier
  ladder.  Transitions are a deterministic function of the injectable
  clock and the fed pressure signals, so every test here drives them
  with a fake clock; the live-daemon drill at the bottom pushes a real
  daemon down the ladder under load and watches it climb back.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.errors import DeadlineExceededError, ServeRejectedError
from repro.resilience.deadline import (
    Deadline,
    check_deadline,
    current_deadline,
    deadline_scope,
    stage_scope,
)
from repro.resilience.faults import FaultPlan, armed
from repro.serve.degrade import (
    MAX_TIER,
    TIER_NAMES,
    DegradeController,
    StalePredictionCache,
)

from tests.test_serve import SQL_JOIN, SQL_LIGHT, client_for, start_daemon


class FakeClock:
    """A monotonic clock the test advances by hand."""

    def __init__(self, now: float = 0.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


# ----------------------------------------------------------------------
# Deadline: budgets, expiry, per-stage accounting
# ----------------------------------------------------------------------


class TestDeadline:
    def test_budget_remaining_and_expiry(self):
        clock = FakeClock()
        deadline = Deadline(budget_s=1.0, clock=clock)
        assert deadline.budget_ms == 1000.0
        assert deadline.remaining_s() == 1.0
        assert not deadline.expired()
        clock.advance(0.4)
        assert deadline.elapsed_s() == pytest.approx(0.4)
        assert deadline.remaining_s() == pytest.approx(0.6)
        clock.advance(0.6)
        assert deadline.expired()
        assert deadline.remaining_s() == 0.0

    def test_check_raises_structured_error(self):
        clock = FakeClock()
        deadline = Deadline(budget_s=0.25, clock=clock)
        deadline.check("optimize")  # within budget: no raise
        clock.advance(0.3)
        with pytest.raises(DeadlineExceededError) as excinfo:
            deadline.check("optimize")
        error = excinfo.value
        assert error.stage == "optimize"
        assert error.budget_ms == pytest.approx(250.0)
        assert error.elapsed_ms == pytest.approx(300.0)

    def test_unbounded_deadline_never_expires(self):
        clock = FakeClock()
        deadline = Deadline(budget_s=None, clock=clock)
        clock.advance(1e6)
        assert not deadline.expired()
        assert deadline.remaining_s() == float("inf")
        deadline.check("predict")  # no raise

    def test_after_ms_constructor(self):
        assert Deadline.after_ms(250.0).budget_ms == pytest.approx(250.0)
        assert Deadline.after_ms(None).budget_s is None

    def test_negative_budget_clamps_to_spent(self):
        deadline = Deadline(budget_s=-1.0, clock=FakeClock())
        assert deadline.budget_s == 0.0
        assert deadline.expired()

    def test_stage_scope_accounts_wall_time(self):
        clock = FakeClock()
        deadline = Deadline(budget_s=10.0, clock=clock)
        with deadline.stage("optimize"):
            clock.advance(0.002)
        with deadline.stage("predict"):
            clock.advance(0.005)
        with deadline.stage("predict"):
            clock.advance(0.001)
        assert deadline.stage_ms["optimize"] == pytest.approx(2.0)
        assert deadline.stage_ms["predict"] == pytest.approx(6.0)
        payload = deadline.to_payload()
        assert payload["budget_ms"] == 10000.0
        assert list(payload["stage_ms"]) == ["optimize", "predict"]

    def test_stage_checks_on_entry(self):
        clock = FakeClock()
        deadline = Deadline(budget_s=0.1, clock=clock)
        clock.advance(0.2)
        entered = False
        with pytest.raises(DeadlineExceededError):
            with deadline.stage("featurize"):
                entered = True
        assert not entered  # cancelled before any stage work ran

    def test_thread_local_scope_nests_and_restores(self):
        assert current_deadline() is None
        outer = Deadline(budget_s=1.0, clock=FakeClock())
        inner = Deadline(budget_s=2.0, clock=FakeClock())
        with deadline_scope(outer):
            assert current_deadline() is outer
            with deadline_scope(inner):
                assert current_deadline() is inner
            with deadline_scope(None):
                assert current_deadline() is None
            assert current_deadline() is outer
        assert current_deadline() is None

    def test_check_deadline_is_noop_without_scope(self):
        check_deadline("optimize")  # no deadline installed: silent

    def test_check_deadline_raises_inside_scope(self):
        clock = FakeClock()
        deadline = Deadline(budget_s=0.05, clock=clock)
        clock.advance(0.1)
        with deadline_scope(deadline):
            with pytest.raises(DeadlineExceededError):
                check_deadline("featurize")

    def test_stage_scope_helper_accounts_current_deadline(self):
        clock = FakeClock()
        deadline = Deadline(budget_s=1.0, clock=clock)
        with stage_scope("predict"):
            pass  # passthrough with no deadline installed
        with deadline_scope(deadline):
            with stage_scope("predict"):
                clock.advance(0.004)
        assert deadline.stage_ms["predict"] == pytest.approx(4.0)

    def test_scope_is_thread_local(self):
        deadline = Deadline(budget_s=1.0, clock=FakeClock())
        seen = {}

        def probe():
            seen["other_thread"] = current_deadline()

        with deadline_scope(deadline):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen["other_thread"] is None


# ----------------------------------------------------------------------
# DegradeController: the hysteretic ladder under a fake clock
# ----------------------------------------------------------------------


def controller(clock, **overrides) -> DegradeController:
    defaults = dict(
        queue_depth=8,
        slo_p99_ms=None,
        down_after_s=0.25,
        up_after_s=1.0,
        clock=clock,
    )
    defaults.update(overrides)
    return DegradeController(**defaults)


class TestDegradeLadder:
    def test_starts_at_full_service(self):
        ladder = controller(FakeClock())
        assert ladder.tier == 0
        assert ladder.tier_name == "full"
        assert TIER_NAMES[MAX_TIER] == "stale"

    def test_step_down_requires_sustained_pressure(self):
        clock = FakeClock()
        ladder = controller(clock)
        assert ladder.evaluate(queue_depth=20) == 0  # opens the window
        clock.advance(0.1)
        assert ladder.evaluate(queue_depth=20) == 0  # not sustained yet
        clock.advance(0.2)
        assert ladder.evaluate(queue_depth=20) == 1  # 0.3s >= down_after_s
        assert ladder.step_downs == 1
        assert ladder.last_reason == "queue_depth"

    def test_ladder_moves_one_tier_at_a_time(self):
        clock = FakeClock()
        ladder = controller(clock)
        ladder.evaluate(queue_depth=20)
        for _ in range(6):
            clock.advance(0.3)
            ladder.evaluate(queue_depth=20)
        # Six sustained windows but only MAX_TIER steps are possible,
        # and each step restarted the window: never a two-tier jump.
        assert ladder.tier == MAX_TIER
        assert all(
            abs(t["to"] - t["from"]) == 1 for t in ladder.transitions
        )

    def test_calm_interruption_restarts_the_down_window(self):
        clock = FakeClock()
        ladder = controller(clock)
        ladder.evaluate(queue_depth=20)
        clock.advance(0.2)
        ladder.evaluate(queue_depth=0)  # pressure cleared: window resets
        clock.advance(0.2)
        ladder.evaluate(queue_depth=20)  # a fresh window opens here
        clock.advance(0.2)
        assert ladder.evaluate(queue_depth=20) == 0
        clock.advance(0.1)
        assert ladder.evaluate(queue_depth=20) == 1

    def test_step_up_is_deliberately_slower(self):
        clock = FakeClock()
        ladder = controller(clock)
        ladder.evaluate(queue_depth=20)
        clock.advance(0.3)
        assert ladder.evaluate(queue_depth=20) == 1
        ladder.evaluate(queue_depth=0)  # calm window opens
        clock.advance(0.5)
        assert ladder.evaluate(queue_depth=0) == 1  # < up_after_s
        clock.advance(0.6)
        assert ladder.evaluate(queue_depth=0) == 0  # 1.1s of calm
        assert ladder.step_ups == 1
        # …and it never climbs above full service.
        clock.advance(2.0)
        assert ladder.evaluate(queue_depth=0) == 0

    def test_breaker_signal_outranks_queue_depth(self):
        clock = FakeClock()
        ladder = controller(clock)
        ladder.evaluate(queue_depth=20, breaker_open=True)
        clock.advance(0.3)
        ladder.evaluate(queue_depth=20, breaker_open=True)
        assert ladder.tier == 1
        assert ladder.last_reason == "breaker_open"

    def test_p99_slo_signal(self):
        clock = FakeClock()
        ladder = controller(clock, slo_p99_ms=100.0, p99_factor=1.5)
        ladder.evaluate(queue_depth=0, p99_ms=160.0)  # > 100 * 1.5
        clock.advance(0.3)
        assert ladder.evaluate(queue_depth=0, p99_ms=160.0) == 1
        assert ladder.last_reason == "p99_slo"
        # Below the factored threshold the same signal counts as calm.
        ladder2 = controller(clock, slo_p99_ms=100.0, p99_factor=1.5)
        ladder2.evaluate(queue_depth=0, p99_ms=140.0)
        clock.advance(0.3)
        assert ladder2.evaluate(queue_depth=0, p99_ms=140.0) == 0

    def test_force_tier_pins_the_ladder(self):
        clock = FakeClock()
        ladder = controller(clock, force_tier=2)
        assert ladder.tier == 2
        clock.advance(10.0)
        assert ladder.evaluate(queue_depth=0) == 2
        assert ladder.evaluate(queue_depth=999, breaker_open=True) == 2
        assert ladder.step_downs == 0 and ladder.step_ups == 0

    @pytest.mark.parametrize(
        "tier,skip_wait,lint,floor,stale",
        [
            (0, False, True, None, False),
            (1, True, True, None, False),
            (2, True, False, "regression", False),
            (3, True, False, "regression", True),
        ],
    )
    def test_tier_effects(self, tier, skip_wait, lint, floor, stale):
        ladder = controller(FakeClock(), force_tier=tier)
        assert ladder.skip_batch_wait() is skip_wait
        assert ladder.lint_enabled() is lint
        assert ladder.fallback_floor() == floor
        assert ladder.stale_ok() is stale

    def test_transitions_are_recorded_for_postmortems(self):
        clock = FakeClock()
        ladder = controller(clock)
        ladder.evaluate(queue_depth=20)
        clock.advance(0.3)
        ladder.evaluate(queue_depth=20)
        ladder.evaluate(queue_depth=0)
        clock.advance(1.1)
        ladder.evaluate(queue_depth=0)
        assert [(t["from"], t["to"], t["reason"]) for t in ladder.transitions] == [
            (0, 1, "queue_depth"),
            (1, 0, "calm"),
        ]
        status = ladder.status()
        assert status["step_downs"] == 1 and status["step_ups"] == 1
        assert status["tier_name"] == "full"
        assert status["hysteresis"]["up_after_s"] > status["hysteresis"][
            "down_after_s"
        ]


class TestStalePredictionCache:
    def test_hits_misses_and_lru_eviction(self):
        cache = StalePredictionCache(max_entries=2)
        assert cache.get("a") is None
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a": "b" is now LRU
        cache.put("c", 3)  # evicts "b"
        assert cache.get("b") is None
        assert cache.get("c") == 3
        assert len(cache) == 2
        stats = cache.stats()
        assert stats["hits"] == 2 and stats["misses"] == 2
        assert stats["size"] == 2 and stats["max_entries"] == 2

    def test_zero_entries_disables_the_cache(self):
        cache = StalePredictionCache(max_entries=0)
        cache.put("a", 1)
        assert cache.get("a") is None
        assert len(cache) == 0


# ----------------------------------------------------------------------
# Daemon integration: 504 semantics, tier effects, the live ladder
# ----------------------------------------------------------------------


class TestDeadlineServing:
    def test_spent_budget_is_504_with_no_forecast(self, serve_service):
        """An expired deadline is a structured 504 that carries *no*
        partially computed forecast — late work is abandoned, not
        half-shipped."""
        daemon = start_daemon(serve_service)
        try:
            client = client_for(daemon)
            status, payload = client.try_forecast(SQL_LIGHT, deadline_ms=0.001)
            assert status == 504
            assert payload["error"] == "deadline_exceeded"
            assert payload["stage"]
            assert payload["budget_ms"] == pytest.approx(0.001)
            assert "forecast" not in payload and "forecasts" not in payload
            assert daemon.status()["requests"]["expired"] == 1
        finally:
            daemon.stop()

    def test_client_raises_typed_504(self, serve_service):
        daemon = start_daemon(serve_service)
        try:
            client = client_for(daemon)
            with pytest.raises(ServeRejectedError) as excinfo:
                client.forecast(SQL_LIGHT, deadline_ms=0.001)
            assert excinfo.value.status == 504
            assert excinfo.value.payload["error"] == "deadline_exceeded"
        finally:
            daemon.stop()

    def test_generous_budget_reports_stage_accounting(self, serve_service):
        daemon = start_daemon(serve_service)
        try:
            client = client_for(daemon)
            payload = client.forecast(SQL_LIGHT, deadline_ms=30000.0)
            deadline = payload["deadline"]
            assert deadline["budget_ms"] == 30000.0
            assert deadline["elapsed_ms"] < 30000.0
            assert deadline["stage_ms"]  # at least one stage charged
            status = daemon.status()["deadline"]
            assert status["stage_ms"]
        finally:
            daemon.stop()

    def test_default_deadline_ms_applies_to_bare_requests(self, serve_service):
        daemon = start_daemon(serve_service, default_deadline_ms=30000.0)
        try:
            client = client_for(daemon)
            payload = client.forecast(SQL_LIGHT)
            assert payload["deadline"]["budget_ms"] == 30000.0
        finally:
            daemon.stop()

    def test_bad_deadline_ms_is_a_400(self, serve_service):
        daemon = start_daemon(serve_service)
        try:
            client = client_for(daemon)
            for bogus in (-5, 0, "soon", True):
                status, payload = client.try_forecast(
                    SQL_LIGHT, deadline_ms=bogus
                )
                assert status == 400, bogus
                assert payload["error"] == "bad_request"
        finally:
            daemon.stop()

    def test_hang_fault_with_budget_becomes_504_then_recovers(
        self, serve_service
    ):
        """A wedged batch under a deadline surfaces as a structured 504
        (cooperative cancellation), and the daemon keeps serving."""
        daemon = start_daemon(serve_service, max_wait_ms=0.0)
        try:
            client = client_for(daemon)
            plan = FaultPlan(seed=5).on(
                "serve.batch", mode="hang", delay=0.05, calls={1}
            )
            with armed(plan):
                status, payload = client.try_forecast(
                    SQL_LIGHT, deadline_ms=200.0
                )
            assert status == 504
            assert payload["error"] == "deadline_exceeded"
            # The stall is over; the next request is served normally.
            recovered = client.forecast(SQL_LIGHT, deadline_ms=30000.0)
            assert recovered["forecast"]["metrics"]["elapsed_time"] > 0
        finally:
            daemon.stop()


class TestDegradedServing:
    def test_forced_tier_2_serves_lean(self, serve_service):
        daemon = start_daemon(
            serve_service, degrade=True, degrade_force_tier=2
        )
        try:
            client = client_for(daemon)
            payload = client.forecast(SQL_LIGHT)
            assert payload["degrade_tier"] == 2
            status = daemon.status()["degrade"]
            assert status["tier"] == 2 and status["forced"] is True
            assert status["tier_name"] == "lean"
            # Tier >= 1 drops the batch coalescing wait.
            assert daemon.batcher.max_wait_s == 0.0
        finally:
            daemon.stop()

    def test_forced_tier_3_answers_repeats_from_stale_cache(
        self, serve_service
    ):
        daemon = start_daemon(
            serve_service, degrade=True, degrade_force_tier=3
        )
        try:
            client = client_for(daemon)
            fresh = client.forecast(SQL_LIGHT)  # miss: real pipeline
            assert fresh.get("stale") is None
            repeat = client.forecast(SQL_LIGHT)
            assert repeat["served_by"] == "stale_cache"
            assert repeat["stale"] is True
            assert repeat["degrade_tier"] == 3
            # Bitwise the same forecast the pipeline produced.
            assert repeat["forecast"] == fresh["forecast"]
            # A statement never seen still goes through the pipeline.
            other = client.forecast(SQL_JOIN)
            assert other["served_by"] != "stale_cache"
            status = daemon.status()
            assert status["stale_cache"]["hits"] >= 1
            assert status["requests"]["served_stale"] == 1
        finally:
            daemon.stop()

    def test_live_ladder_steps_down_under_load_and_back_up(
        self, serve_service
    ):
        """The acceptance ladder drill: slow batches + concurrent load
        push a real daemon down the ladder; draining the pressure walks
        it back to full service."""
        daemon = start_daemon(
            serve_service,
            max_batch=2,
            max_wait_ms=5.0,
            degrade=True,
            degrade_queue_depth=2,
            degrade_down_after_s=0.02,
            degrade_up_after_s=0.05,
        )
        try:
            client = client_for(daemon)
            tiers: list[int] = []
            tier_lock = threading.Lock()

            def worker():
                for _ in range(8):
                    status, payload = client.try_forecast(SQL_LIGHT)
                    if status == 200:
                        with tier_lock:
                            tiers.append(payload["degrade_tier"])

            plan = FaultPlan(seed=9).on(
                "serve.batch", mode="delay", delay=0.03, rate=1.0
            )
            with armed(plan):
                threads = [threading.Thread(target=worker) for _ in range(6)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
            degrade = daemon.status()["degrade"]
            assert degrade["step_downs"] >= 1
            assert max(tiers) >= 1  # responses said so, not just metrics
            # Pressure is gone: trickle requests until the ladder is
            # back at full service (each request feeds an observation).
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                client.forecast(SQL_LIGHT)
                if daemon.status()["degrade"]["tier"] == 0:
                    break
                time.sleep(0.03)
            degrade = daemon.status()["degrade"]
            assert degrade["tier"] == 0
            assert degrade["step_ups"] >= 1
        finally:
            daemon.stop()
