"""Gaussian kernel and scale-heuristic tests (incl. hypothesis properties)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.kernels import (
    cross_squared_distances,
    gaussian_kernel_cross,
    gaussian_kernel_matrix,
    scale_factor_heuristic,
    squared_distances,
)
from repro.core.neighbors import _euclidean_distances, nearest_neighbors

finite_matrix = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(2, 12), st.integers(1, 6)),
    elements=st.floats(-50, 50, allow_nan=False),
)


def paired_matrices(max_rows=10, max_cols=5):
    """Two float matrices sharing a column count (points, reference)."""
    return st.integers(1, max_cols).flatmap(
        lambda cols: st.tuples(
            arrays(
                dtype=np.float64,
                shape=st.tuples(st.integers(1, max_rows), st.just(cols)),
                elements=st.floats(-50, 50, allow_nan=False),
            ),
            arrays(
                dtype=np.float64,
                shape=st.tuples(st.integers(1, max_rows), st.just(cols)),
                elements=st.floats(-50, 50, allow_nan=False),
            ),
        )
    )


class TestDistances:
    def test_zero_diagonal(self):
        data = np.random.default_rng(0).normal(size=(5, 3))
        distances = squared_distances(data)
        assert np.allclose(np.diag(distances), 0.0)

    def test_matches_naive(self):
        data = np.random.default_rng(0).normal(size=(6, 4))
        fast = squared_distances(data)
        for i in range(6):
            for j in range(6):
                naive = np.sum((data[i] - data[j]) ** 2)
                assert fast[i, j] == pytest.approx(naive, abs=1e-9)

    def test_cross_matches_square(self):
        data = np.random.default_rng(1).normal(size=(5, 3))
        assert np.allclose(
            cross_squared_distances(data, data), squared_distances(data)
        )

    def test_non_negative(self):
        data = np.random.default_rng(2).normal(size=(10, 2)) * 1000
        assert (squared_distances(data) >= 0).all()


class TestDistanceProperties:
    """Hypothesis properties for the distance kernels and the knn helper."""

    @given(finite_matrix)
    @settings(max_examples=40, deadline=None)
    def test_squared_distances_symmetric_nonneg_zero_diag(self, data):
        distances = squared_distances(data)
        assert np.allclose(distances, distances.T)
        assert (distances >= 0).all()
        assert np.allclose(np.diag(distances), 0.0, atol=1e-7)

    @given(paired_matrices())
    @settings(max_examples=40, deadline=None)
    def test_cross_squared_matches_naive(self, matrices):
        points, reference = matrices
        fast = cross_squared_distances(points, reference)
        naive = ((points[:, None, :] - reference[None, :, :]) ** 2).sum(
            axis=2
        )
        # The expansion trick loses precision relative to the naive
        # broadcast at large magnitudes; bound the absolute error by the
        # scale of the squared values involved.
        scale = max(float(naive.max()), 1.0)
        assert fast.shape == naive.shape
        assert np.allclose(fast, naive, atol=1e-8 * scale)

    @given(paired_matrices())
    @settings(max_examples=40, deadline=None)
    def test_euclidean_distances_matches_naive_norm(self, matrices):
        points, reference = matrices
        fast = _euclidean_distances(points, reference)
        naive = np.linalg.norm(
            points[:, None, :] - reference[None, :, :], axis=2
        )
        assert (fast >= 0).all()
        scale = max(float(naive.max()), 1.0)
        assert np.allclose(fast, naive, atol=1e-6 * scale)

    @given(finite_matrix)
    @settings(max_examples=40, deadline=None)
    def test_euclidean_self_distance_zero_diagonal(self, data):
        distances = _euclidean_distances(data, data)
        assert np.allclose(np.diag(distances), 0.0, atol=1e-5)

    @given(paired_matrices(), st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_nearest_neighbors_sorted_and_valid(self, matrices, k):
        points, reference = matrices
        indices, distances = nearest_neighbors(points, reference, k)
        k_eff = min(k, reference.shape[0])
        assert indices.shape == (points.shape[0], k_eff)
        assert distances.shape == (points.shape[0], k_eff)
        assert (indices >= 0).all()
        assert (indices < reference.shape[0]).all()
        assert (distances >= 0).all()
        # Neighbours come back nearest-first...
        assert (np.diff(distances, axis=1) >= 0).all()
        # ...each row's indices are distinct...
        for row in indices:
            assert len(set(row.tolist())) == k_eff
        # ...and the nearest reported distance is the true minimum
        # (quantized exactly as nearest_neighbors quantizes for ties).
        full = np.round(_euclidean_distances(points, reference), decimals=9)
        assert np.allclose(distances[:, 0], full.min(axis=1))

    def test_self_neighbors_find_themselves(self):
        data = np.random.default_rng(5).normal(size=(20, 4))
        indices, distances = nearest_neighbors(data, data, 1)
        assert np.array_equal(indices[:, 0], np.arange(20))
        # sqrt of the expansion trick's fp noise: ~1e-8, not exactly 0.
        assert np.allclose(distances[:, 0], 0.0, atol=1e-6)


class TestKernelMatrix:
    def test_unit_diagonal(self):
        data = np.random.default_rng(0).normal(size=(8, 3))
        kernel = gaussian_kernel_matrix(data, tau=1.0)
        assert np.allclose(np.diag(kernel), 1.0)

    def test_symmetric(self):
        data = np.random.default_rng(0).normal(size=(8, 3))
        kernel = gaussian_kernel_matrix(data, tau=2.0)
        assert np.allclose(kernel, kernel.T)

    def test_values_in_unit_interval(self):
        data = np.random.default_rng(0).normal(size=(8, 3))
        kernel = gaussian_kernel_matrix(data, tau=0.5)
        assert (kernel > 0).all()
        assert (kernel <= 1).all()

    def test_identical_points_similarity_one(self):
        data = np.ones((4, 3))
        kernel = gaussian_kernel_matrix(data, tau=1.0)
        assert np.allclose(kernel, 1.0)

    def test_larger_tau_means_more_similar(self):
        data = np.random.default_rng(0).normal(size=(6, 3))
        narrow = gaussian_kernel_matrix(data, tau=0.1)
        wide = gaussian_kernel_matrix(data, tau=10.0)
        off_diag = ~np.eye(6, dtype=bool)
        assert (wide[off_diag] >= narrow[off_diag]).all()

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            gaussian_kernel_matrix(np.ones((3, 2)), tau=0.0)

    @given(finite_matrix)
    @settings(max_examples=40, deadline=None)
    def test_kernel_is_psd_with_unit_diagonal(self, data):
        """Property: Gaussian kernel matrices are symmetric PSD with 1s on
        the diagonal."""
        kernel = gaussian_kernel_matrix(data, tau=5.0)
        assert np.allclose(kernel, kernel.T)
        assert np.allclose(np.diag(kernel), 1.0)
        eigenvalues = np.linalg.eigvalsh(kernel)
        assert eigenvalues.min() >= -1e-8


class TestCrossKernel:
    def test_shape(self):
        train = np.random.default_rng(0).normal(size=(10, 4))
        new = np.random.default_rng(1).normal(size=(3, 4))
        cross = gaussian_kernel_cross(new, train, tau=1.0)
        assert cross.shape == (3, 10)

    def test_self_cross_matches_matrix(self):
        data = np.random.default_rng(0).normal(size=(7, 3))
        cross = gaussian_kernel_cross(data, data, tau=2.0)
        full = gaussian_kernel_matrix(data, tau=2.0)
        assert np.allclose(cross, full, atol=1e-12)


class TestScaleHeuristic:
    def test_distance_method_positive(self):
        data = np.random.default_rng(0).normal(size=(50, 5))
        tau = scale_factor_heuristic(data, 0.1)
        assert tau > 0

    def test_scales_with_fraction(self):
        data = np.random.default_rng(0).normal(size=(50, 5))
        assert scale_factor_heuristic(data, 0.2) == pytest.approx(
            2 * scale_factor_heuristic(data, 0.1)
        )

    def test_norm_variance_method(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(100, 3)) * rng.uniform(1, 100, size=(100, 1))
        tau = scale_factor_heuristic(data, 0.1, method="norm_variance")
        norms = np.linalg.norm(data, axis=1)
        assert tau == pytest.approx(0.1 * np.var(norms))

    def test_norm_variance_degenerate_falls_back(self):
        data = np.ones((10, 3))
        tau = scale_factor_heuristic(data, 0.1, method="norm_variance")
        assert tau > 0

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            scale_factor_heuristic(np.ones((3, 2)), 0.1, method="magic")

    def test_single_point(self):
        assert scale_factor_heuristic(np.ones((1, 3)), 0.1) == 1.0

    def test_subsampling_large_inputs(self):
        data = np.random.default_rng(0).normal(size=(2000, 3))
        tau_big = scale_factor_heuristic(data, 0.1)
        tau_small = scale_factor_heuristic(data[:400], 0.1)
        assert tau_big == pytest.approx(tau_small, rel=0.3)
