"""Gaussian kernel and scale-heuristic tests (incl. hypothesis properties)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.core.kernels import (
    cross_squared_distances,
    gaussian_kernel_cross,
    gaussian_kernel_matrix,
    scale_factor_heuristic,
    squared_distances,
)

finite_matrix = arrays(
    dtype=np.float64,
    shape=st.tuples(st.integers(2, 12), st.integers(1, 6)),
    elements=st.floats(-50, 50, allow_nan=False),
)


class TestDistances:
    def test_zero_diagonal(self):
        data = np.random.default_rng(0).normal(size=(5, 3))
        distances = squared_distances(data)
        assert np.allclose(np.diag(distances), 0.0)

    def test_matches_naive(self):
        data = np.random.default_rng(0).normal(size=(6, 4))
        fast = squared_distances(data)
        for i in range(6):
            for j in range(6):
                naive = np.sum((data[i] - data[j]) ** 2)
                assert fast[i, j] == pytest.approx(naive, abs=1e-9)

    def test_cross_matches_square(self):
        data = np.random.default_rng(1).normal(size=(5, 3))
        assert np.allclose(
            cross_squared_distances(data, data), squared_distances(data)
        )

    def test_non_negative(self):
        data = np.random.default_rng(2).normal(size=(10, 2)) * 1000
        assert (squared_distances(data) >= 0).all()


class TestKernelMatrix:
    def test_unit_diagonal(self):
        data = np.random.default_rng(0).normal(size=(8, 3))
        kernel = gaussian_kernel_matrix(data, tau=1.0)
        assert np.allclose(np.diag(kernel), 1.0)

    def test_symmetric(self):
        data = np.random.default_rng(0).normal(size=(8, 3))
        kernel = gaussian_kernel_matrix(data, tau=2.0)
        assert np.allclose(kernel, kernel.T)

    def test_values_in_unit_interval(self):
        data = np.random.default_rng(0).normal(size=(8, 3))
        kernel = gaussian_kernel_matrix(data, tau=0.5)
        assert (kernel > 0).all()
        assert (kernel <= 1).all()

    def test_identical_points_similarity_one(self):
        data = np.ones((4, 3))
        kernel = gaussian_kernel_matrix(data, tau=1.0)
        assert np.allclose(kernel, 1.0)

    def test_larger_tau_means_more_similar(self):
        data = np.random.default_rng(0).normal(size=(6, 3))
        narrow = gaussian_kernel_matrix(data, tau=0.1)
        wide = gaussian_kernel_matrix(data, tau=10.0)
        off_diag = ~np.eye(6, dtype=bool)
        assert (wide[off_diag] >= narrow[off_diag]).all()

    def test_invalid_tau(self):
        with pytest.raises(ValueError):
            gaussian_kernel_matrix(np.ones((3, 2)), tau=0.0)

    @given(finite_matrix)
    @settings(max_examples=40, deadline=None)
    def test_kernel_is_psd_with_unit_diagonal(self, data):
        """Property: Gaussian kernel matrices are symmetric PSD with 1s on
        the diagonal."""
        kernel = gaussian_kernel_matrix(data, tau=5.0)
        assert np.allclose(kernel, kernel.T)
        assert np.allclose(np.diag(kernel), 1.0)
        eigenvalues = np.linalg.eigvalsh(kernel)
        assert eigenvalues.min() >= -1e-8


class TestCrossKernel:
    def test_shape(self):
        train = np.random.default_rng(0).normal(size=(10, 4))
        new = np.random.default_rng(1).normal(size=(3, 4))
        cross = gaussian_kernel_cross(new, train, tau=1.0)
        assert cross.shape == (3, 10)

    def test_self_cross_matches_matrix(self):
        data = np.random.default_rng(0).normal(size=(7, 3))
        cross = gaussian_kernel_cross(data, data, tau=2.0)
        full = gaussian_kernel_matrix(data, tau=2.0)
        assert np.allclose(cross, full, atol=1e-12)


class TestScaleHeuristic:
    def test_distance_method_positive(self):
        data = np.random.default_rng(0).normal(size=(50, 5))
        tau = scale_factor_heuristic(data, 0.1)
        assert tau > 0

    def test_scales_with_fraction(self):
        data = np.random.default_rng(0).normal(size=(50, 5))
        assert scale_factor_heuristic(data, 0.2) == pytest.approx(
            2 * scale_factor_heuristic(data, 0.1)
        )

    def test_norm_variance_method(self):
        rng = np.random.default_rng(0)
        data = rng.normal(size=(100, 3)) * rng.uniform(1, 100, size=(100, 1))
        tau = scale_factor_heuristic(data, 0.1, method="norm_variance")
        norms = np.linalg.norm(data, axis=1)
        assert tau == pytest.approx(0.1 * np.var(norms))

    def test_norm_variance_degenerate_falls_back(self):
        data = np.ones((10, 3))
        tau = scale_factor_heuristic(data, 0.1, method="norm_variance")
        assert tau > 0

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            scale_factor_heuristic(np.ones((3, 2)), 0.1, method="magic")

    def test_single_point(self):
        assert scale_factor_heuristic(np.ones((1, 3)), 0.1) == 1.0

    def test_subsampling_large_inputs(self):
        data = np.random.default_rng(0).normal(size=(2000, 3))
        tau_big = scale_factor_heuristic(data, 0.1)
        tau_small = scale_factor_heuristic(data[:400], 0.1)
        assert tau_big == pytest.approx(tau_small, rel=0.3)
