"""Parser tests: structure, precedence, desugaring, errors, round trips."""

import pytest

from repro.errors import ParseError
from repro.sql.ast import (
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Exists,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Like,
    Literal,
    Star,
    UnaryOp,
)
from repro.sql.parser import parse


class TestSelectList:
    def test_star(self):
        query = parse("SELECT * FROM t")
        assert len(query.select) == 1
        assert isinstance(query.select[0].expr, Star)

    def test_column_with_alias(self):
        query = parse("SELECT a AS x FROM t")
        assert query.select[0].alias == "x"
        assert query.select[0].expr == ColumnRef("a")

    def test_implicit_alias(self):
        query = parse("SELECT a x FROM t")
        assert query.select[0].alias == "x"

    def test_qualified_column(self):
        query = parse("SELECT t.a FROM t")
        assert query.select[0].expr == ColumnRef("a", table="t")

    def test_multiple_items(self):
        query = parse("SELECT a, b, c FROM t")
        assert len(query.select) == 3

    def test_distinct(self):
        assert parse("SELECT DISTINCT a FROM t").distinct
        assert not parse("SELECT a FROM t").distinct

    def test_aggregate_count_star(self):
        query = parse("SELECT count(*) FROM t")
        call = query.select[0].expr
        assert isinstance(call, FuncCall)
        assert call.name == "count"
        assert isinstance(call.args[0], Star)

    def test_aggregate_distinct(self):
        call = parse("SELECT count(DISTINCT a) FROM t").select[0].expr
        assert call.distinct

    def test_arithmetic_expression(self):
        expr = parse("SELECT a * b + 2 FROM t").select[0].expr
        assert isinstance(expr, BinaryOp)
        assert expr.op == "+"
        assert expr.left.op == "*"


class TestFromClause:
    def test_single_table(self):
        query = parse("SELECT * FROM store_sales")
        assert query.tables[0].name == "store_sales"
        assert query.tables[0].binding == "store_sales"

    def test_alias(self):
        query = parse("SELECT * FROM store_sales ss")
        assert query.tables[0].alias == "ss"
        assert query.tables[0].binding == "ss"

    def test_as_alias(self):
        query = parse("SELECT * FROM store_sales AS ss")
        assert query.tables[0].alias == "ss"

    def test_comma_join(self):
        query = parse("SELECT * FROM a, b, c")
        assert len(query.tables) == 3

    def test_join_on_desugars_to_where(self):
        query = parse("SELECT * FROM a JOIN b ON a.x = b.y WHERE a.z = 1")
        # Both the ON condition and the WHERE predicate must be conjuncts.
        sql = query.where.to_sql()
        assert "a.x = b.y" in sql
        assert "a.z = 1" in sql

    def test_inner_join_keyword(self):
        query = parse("SELECT * FROM a INNER JOIN b ON a.x = b.y")
        assert len(query.tables) == 2
        assert query.where is not None


class TestPredicates:
    def test_comparison_operators(self):
        for op in ("=", "<", "<=", ">", ">=", "<>"):
            query = parse(f"SELECT * FROM t WHERE a {op} 1")
            assert query.where.op == op

    def test_bang_equals_normalised(self):
        assert parse("SELECT * FROM t WHERE a != 1").where.op == "<>"

    def test_and_or_precedence(self):
        where = parse("SELECT * FROM t WHERE a = 1 OR b = 2 AND c = 3").where
        # AND binds tighter: OR(a=1, AND(b=2, c=3))
        assert where.op == "OR"
        assert where.right.op == "AND"

    def test_not(self):
        where = parse("SELECT * FROM t WHERE NOT a = 1").where
        assert isinstance(where, UnaryOp)
        assert where.op == "NOT"

    def test_between(self):
        where = parse("SELECT * FROM t WHERE a BETWEEN 1 AND 10").where
        assert isinstance(where, Between)
        assert not where.negated

    def test_not_between(self):
        where = parse("SELECT * FROM t WHERE a NOT BETWEEN 1 AND 10").where
        assert isinstance(where, Between)
        assert where.negated

    def test_in_list(self):
        where = parse("SELECT * FROM t WHERE a IN (1, 2, 3)").where
        assert isinstance(where, InList)
        assert len(where.values) == 3

    def test_in_string_list(self):
        where = parse("SELECT * FROM t WHERE a IN ('x', 'y')").where
        assert where.values[0] == Literal("x")

    def test_not_in(self):
        where = parse("SELECT * FROM t WHERE a NOT IN (1)").where
        assert where.negated

    def test_like(self):
        where = parse("SELECT * FROM t WHERE a LIKE 'pre%'").where
        assert isinstance(where, Like)
        assert where.pattern == "pre%"

    def test_is_null(self):
        where = parse("SELECT * FROM t WHERE a IS NULL").where
        assert isinstance(where, IsNull)
        assert not where.negated

    def test_is_not_null(self):
        where = parse("SELECT * FROM t WHERE a IS NOT NULL").where
        assert where.negated

    def test_in_subquery(self):
        where = parse(
            "SELECT * FROM t WHERE a IN (SELECT b FROM u WHERE u.c = 1)"
        ).where
        assert isinstance(where, InSubquery)
        assert where.query.tables[0].name == "u"

    def test_exists_subquery(self):
        where = parse(
            "SELECT * FROM t WHERE EXISTS (SELECT * FROM u WHERE u.x = t.y)"
        ).where
        assert isinstance(where, Exists)

    def test_not_exists(self):
        where = parse(
            "SELECT * FROM t WHERE NOT EXISTS (SELECT * FROM u)"
        ).where
        assert isinstance(where, UnaryOp)
        assert isinstance(where.operand, Exists)

    def test_unary_minus(self):
        where = parse("SELECT * FROM t WHERE a > -5").where
        assert isinstance(where.right, UnaryOp)

    def test_case_when(self):
        expr = parse(
            "SELECT CASE WHEN a > 1 THEN 2 ELSE 3 END FROM t"
        ).select[0].expr
        assert isinstance(expr, CaseWhen)
        assert expr.default == Literal(3)


class TestClauses:
    def test_group_by(self):
        query = parse("SELECT a, count(*) FROM t GROUP BY a")
        assert query.group_by == (ColumnRef("a"),)

    def test_group_by_multiple(self):
        query = parse("SELECT a, b FROM t GROUP BY a, b")
        assert len(query.group_by) == 2

    def test_having(self):
        query = parse(
            "SELECT a, count(*) FROM t GROUP BY a HAVING count(*) > 5"
        )
        assert query.having is not None

    def test_order_by_default_ascending(self):
        query = parse("SELECT a FROM t ORDER BY a")
        assert not query.order_by[0].descending

    def test_order_by_desc(self):
        query = parse("SELECT a FROM t ORDER BY a DESC")
        assert query.order_by[0].descending

    def test_order_by_multiple(self):
        query = parse("SELECT a, b FROM t ORDER BY a DESC, b ASC")
        assert [o.descending for o in query.order_by] == [True, False]

    def test_limit(self):
        assert parse("SELECT a FROM t LIMIT 10").limit == 10

    def test_no_limit(self):
        assert parse("SELECT a FROM t").limit is None


class TestParseErrors:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT",
            "SELECT a",
            "SELECT a FROM",
            "SELECT a FROM t WHERE",
            "SELECT a FROM t GROUP a",
            "SELECT a FROM t LIMIT 2.5",
            "SELECT a FROM t LIMIT",
            "SELECT a FROM t ORDER a",
            "SELECT a FROM t extra garbage (",
            "SELECT a FROM t WHERE a LIKE 5",
            "SELECT a FROM t WHERE a NOT = 1",
            "SELECT CASE END FROM t",
        ],
    )
    def test_invalid_queries_raise(self, sql):
        with pytest.raises(ParseError):
            parse(sql)

    def test_error_carries_position(self):
        with pytest.raises(ParseError) as excinfo:
            parse("SELECT a FROM t WHERE LIMIT")
        assert excinfo.value.position >= 0


class TestRoundTrips:
    @pytest.mark.parametrize(
        "sql",
        [
            "SELECT * FROM t",
            "SELECT a, b AS c FROM t AS x WHERE (a = 1)",
            "SELECT count(*) FROM t GROUP BY a HAVING (count(*) > 2)",
            "SELECT a FROM t ORDER BY a DESC LIMIT 5",
            "SELECT DISTINCT a FROM t, u WHERE (t.x = u.y)",
            "SELECT sum(a) AS s FROM t WHERE (a BETWEEN 1 AND 2)",
            "SELECT a FROM t WHERE (a IN ('x', 'y'))",
            "SELECT a FROM t WHERE (EXISTS (SELECT * FROM u WHERE (u.i = t.i)))",
        ],
    )
    def test_parse_print_parse_is_stable(self, sql):
        """to_sql output must itself parse to an identical AST."""
        first = parse(sql)
        second = parse(first.to_sql())
        assert first == second
