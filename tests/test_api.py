"""Public API integration tests (QueryPerformancePredictor)."""

import pytest

from repro.api import Forecast, QueryPerformancePredictor
from repro.engine import PerformanceMetrics
from repro.errors import ModelError
from repro.workloads.generator import generate_pool


@pytest.fixture(scope="module")
def service():
    """A small but real trained predictor (shared across tests)."""
    return QueryPerformancePredictor.train_on_tpcds(
        n_queries=120, scale_factor=0.1, seed=4
    )


EXAMPLE_SQL = (
    "SELECT i.i_category, sum(ss.ss_sales_price) AS revenue "
    "FROM store_sales ss, item i "
    "WHERE ss.ss_item_sk = i.i_item_sk AND ss.ss_quantity > 10 "
    "GROUP BY i.i_category ORDER BY revenue DESC"
)


class TestTraining:
    def test_train_on_tpcds(self, service):
        assert service.training_corpus is not None
        assert len(service.training_corpus) == 120

    def test_untrained_predict_raises(self, tpcds_catalog):
        fresh = QueryPerformancePredictor(tpcds_catalog)
        with pytest.raises(ModelError):
            fresh.predict("SELECT * FROM item i")

    def test_fit_pool_on_existing_catalog(self, tpcds_catalog):
        service = QueryPerformancePredictor(tpcds_catalog)
        service.fit_pool(generate_pool(40, seed=1, problem_fraction=0.0))
        metrics = service.predict("SELECT count(*) AS c FROM item i")
        assert isinstance(metrics, PerformanceMetrics)


class TestPrediction:
    def test_predict_returns_metrics(self, service):
        metrics = service.predict(EXAMPLE_SQL)
        assert metrics.elapsed_time > 0
        assert metrics.records_accessed >= 0

    def test_forecast_fields(self, service):
        forecast = service.forecast(EXAMPLE_SQL)
        assert isinstance(forecast, Forecast)
        assert forecast.category in (
            "feather", "golf_ball", "bowling_ball", "wrecking_ball"
        )
        assert forecast.optimizer_cost > 0

    def test_prediction_close_to_measurement(self, service):
        """An in-distribution query must be predicted within 10x."""
        predicted = service.predict(EXAMPLE_SQL)
        actual = service.measure(EXAMPLE_SQL)
        ratio = predicted.elapsed_time / actual.elapsed_time
        assert 0.1 < ratio < 10.0

    def test_explain_report(self, service):
        report = service.explain(EXAMPLE_SQL)
        assert "predicted elapsed time" in report
        assert "records accessed" in report
        assert "confidence" in report

    def test_features_for(self, service):
        vector = service.features_for(EXAMPLE_SQL)
        assert vector.ndim == 1
        assert vector.sum() > 0

    def test_measure_is_deterministic_without_noise_seed(self, service):
        a = service.measure("SELECT count(*) AS c FROM item i")
        b = service.measure("SELECT count(*) AS c FROM item i")
        assert a.records_accessed == b.records_accessed
        assert a.elapsed_time == pytest.approx(b.elapsed_time)


class TestTwoStepService:
    def test_two_step_mode(self, tpcds_catalog):
        service = QueryPerformancePredictor(tpcds_catalog, two_step=True)
        service.fit_pool(generate_pool(60, seed=6, problem_fraction=0.2))
        metrics = service.predict(EXAMPLE_SQL)
        assert metrics.elapsed_time > 0
