"""Black-box tests for the prediction serving daemon.

Every daemon in this file listens on a real loopback socket (port 0 →
ephemeral) and is exercised through :class:`repro.serve.ServeClient` —
the same HTTP/JSON surface an external workload manager would use.  The
headline guarantees:

* concurrent clients land in shared micro-batches (asserted by counting
  ``gaussian_kernel_cross`` invocations — N requests, < N crosses);
* a served forecast is bitwise-identical to an in-process
  ``service.forecast`` call;
* admission rejections are structured 429/503s with machine-readable
  retry hints, never bare 500s;
* hot reload swaps artifacts atomically — responses are never dropped
  and never mix model versions;
* shutdown drains the queue before closing the socket.
"""

from __future__ import annotations

import signal
import threading
import time

import pytest

import repro.core.predictor as predictor_module
from repro.api import (
    QueryPerformancePredictor,
    artifact_fingerprint,
    clear_artifact_cache,
    resolve_artifact,
)
from repro.errors import ServeError, ServeRejectedError
from repro.serve import (
    AdmissionController,
    MicroBatcher,
    PredictionDaemon,
    QueueFullError,
    ServeClient,
    ServeConfig,
    TokenBucket,
)
from repro.serve.loadgen import run_load

SQL_LIGHT = "SELECT count(*) AS c FROM store_sales ss WHERE ss.ss_quantity > 30"
SQL_JOIN = (
    "SELECT i.i_category, sum(ss.ss_net_profit) AS total FROM store_sales ss "
    "JOIN item i ON ss.ss_item_sk = i.i_item_sk GROUP BY i.i_category"
)


def start_daemon(service, **overrides) -> PredictionDaemon:
    """A daemon on an ephemeral loopback port with test-friendly knobs."""
    defaults = dict(max_batch=8, max_wait_ms=20.0, metrics=True)
    defaults.update(overrides)
    daemon = PredictionDaemon(service=service, config=ServeConfig(**defaults))
    daemon.start()
    return daemon


def client_for(daemon: PredictionDaemon, client_id="test") -> ServeClient:
    host, port = daemon.address
    return ServeClient(host, port, timeout_s=30.0, client_id=client_id)


# ----------------------------------------------------------------------
# Plumbing: health, metrics, error shapes
# ----------------------------------------------------------------------


class TestEndpoints:
    def test_healthz_reports_model_version(self, serve_service):
        daemon = start_daemon(serve_service)
        try:
            health = client_for(daemon).health()
            assert health["status"] == "ok"
            assert health["model_version"] == daemon.model_version
        finally:
            daemon.stop()

    def test_metrics_exposes_prometheus_text(self, serve_service):
        daemon = start_daemon(serve_service)
        try:
            client = client_for(daemon)
            client.forecast(SQL_LIGHT)
            text = client.metrics_text()
        finally:
            daemon.stop()
        assert "repro_serve_requests_total" in text
        # Valid exposition text: every non-comment line is "name value".
        for line in text.splitlines():
            if not line or line.startswith("#"):
                continue
            name, _, value = line.partition(" ")
            assert name and value, line
            float(value)

    def test_unknown_path_is_structured_404(self, serve_service):
        daemon = start_daemon(serve_service)
        try:
            client = client_for(daemon)
            status, payload = client._request("POST", "/v1/nope", {})
            assert status == 404
            assert payload["error"] == "not_found"
        finally:
            daemon.stop()

    def test_bad_json_and_missing_sql_are_400(self, serve_service):
        daemon = start_daemon(serve_service)
        try:
            client = client_for(daemon)
            status, payload = client._request("POST", "/v1/forecast", {})
            assert (status, payload["error"]) == (400, "bad_request")
            status, payload = client._request(
                "POST", "/v1/forecast_batch", {"sqls": []}
            )
            assert (status, payload["error"]) == (400, "bad_request")
        finally:
            daemon.stop()

    def test_admin_status_shape(self, serve_service):
        daemon = start_daemon(serve_service, slo_p99_ms=30_000.0)
        try:
            client = client_for(daemon)
            client.forecast(SQL_LIGHT)
            status = client.status()
        finally:
            daemon.stop()
        for key in (
            "model_version", "uptime_s", "inflight", "requests", "slo",
            "batcher", "admission", "breaker", "resilience",
        ):
            assert key in status, key
        assert status["requests"]["ok"] >= 1
        assert status["slo"]["p99_ms"] >= status["slo"]["p50_ms"] >= 0
        assert status["slo"]["met"] is True
        assert status["breaker"]["state"] == "closed"


# ----------------------------------------------------------------------
# Prediction identity and micro-batching
# ----------------------------------------------------------------------


class TestPredictions:
    def test_served_forecast_bitwise_equals_direct(self, serve_service):
        daemon = start_daemon(serve_service)
        try:
            payload = client_for(daemon).forecast(SQL_JOIN)
        finally:
            daemon.stop()
        direct = serve_service.forecast(SQL_JOIN)
        served = payload["forecast"]["metrics"]
        for name, value in served.items():
            assert value == float(getattr(direct.metrics, name)), name
        assert payload["forecast"]["category"] == direct.category
        assert payload["forecast"]["optimizer_cost"] == float(
            direct.optimizer_cost
        )

    def test_batch_endpoint_bitwise_equals_sequential(self, serve_service):
        sqls = [SQL_LIGHT, SQL_JOIN, SQL_LIGHT]
        daemon = start_daemon(serve_service)
        try:
            payload = client_for(daemon).forecast_batch(sqls)
        finally:
            daemon.stop()
        assert len(payload["forecasts"]) == 3
        for served, sql in zip(payload["forecasts"], sqls):
            direct = serve_service.forecast(sql)
            for name, value in served["metrics"].items():
                assert value == float(getattr(direct.metrics, name)), name

    def test_concurrent_requests_share_micro_batches(self, serve_service):
        n_clients = 12
        calls = []
        original = predictor_module.gaussian_kernel_cross

        def counting(*args, **kwargs):
            calls.append(threading.get_ident())
            return original(*args, **kwargs)

        daemon = start_daemon(
            serve_service, max_batch=n_clients, max_wait_ms=250.0
        )
        barrier = threading.Barrier(n_clients)
        results = []

        def one(index: int) -> None:
            client = client_for(daemon, client_id=f"c{index}")
            barrier.wait()
            results.append(client.forecast(SQL_LIGHT))

        predictor_module.gaussian_kernel_cross = counting
        try:
            threads = [
                threading.Thread(target=one, args=(i,))
                for i in range(n_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=60)
        finally:
            predictor_module.gaussian_kernel_cross = original
            daemon.stop()
        assert len(results) == n_clients
        # The whole point of micro-batching: far fewer kernel crosses
        # than requests (a full collapse is 1; scheduling may split it).
        assert 1 <= len(calls) < n_clients
        assert daemon.batcher.largest_batch > 1

    def test_32_concurrent_clients_all_answered(self, serve_service):
        n_clients = 32
        daemon = start_daemon(
            serve_service, max_batch=16, max_wait_ms=50.0, max_queue=256
        )
        barrier = threading.Barrier(n_clients)
        outcomes = []
        lock = threading.Lock()

        def one(index: int) -> None:
            client = client_for(daemon, client_id=f"c{index}")
            barrier.wait()
            payload = client.forecast(SQL_LIGHT)
            with lock:
                outcomes.append(payload["model_version"])

        try:
            threads = [
                threading.Thread(target=one, args=(i,))
                for i in range(n_clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
            stats = daemon.batcher.stats()
        finally:
            daemon.stop()
        assert len(outcomes) == n_clients
        assert set(outcomes) == {daemon.model_version}
        assert stats["batches"] < n_clients
        assert stats["largest_batch"] > 1

    def test_single_and_batched_results_identical(self, serve_service):
        """The same statement answered solo and inside a shared batch
        must produce byte-identical numbers (batching is pure routing)."""
        daemon = start_daemon(serve_service, max_batch=1, max_wait_ms=0.0)
        try:
            solo = client_for(daemon).forecast(SQL_JOIN)["forecast"]
        finally:
            daemon.stop()
        daemon = start_daemon(serve_service, max_batch=8, max_wait_ms=100.0)
        try:
            batched = client_for(daemon).forecast_batch(
                [SQL_LIGHT, SQL_JOIN, SQL_LIGHT]
            )["forecasts"][1]
        finally:
            daemon.stop()
        assert solo["metrics"] == batched["metrics"]
        assert solo["optimizer_cost"] == batched["optimizer_cost"]


# ----------------------------------------------------------------------
# Admission control
# ----------------------------------------------------------------------


class TestAdmission:
    def test_quota_exhaustion_returns_429_with_retry_hint(self, serve_service):
        daemon = start_daemon(
            serve_service, quota_rate=0.001, quota_burst=0.001
        )
        try:
            client = client_for(daemon, client_id="greedy")
            with pytest.raises(ServeRejectedError) as excinfo:
                for _ in range(50):
                    client.forecast(SQL_JOIN)
        finally:
            daemon.stop()
        rejection = excinfo.value
        assert rejection.status == 429
        assert rejection.retry_after_s > 0
        assert rejection.payload["error"] == "quota_exhausted"
        assert rejection.payload["admission"]["reason"] == "quota_exhausted"

    def test_quota_is_per_client(self, serve_service):
        daemon = start_daemon(
            serve_service, quota_rate=0.001, quota_burst=0.001
        )
        try:
            greedy = client_for(daemon, client_id="greedy")
            with pytest.raises(ServeRejectedError):
                for _ in range(50):
                    greedy.forecast(SQL_JOIN)
            # A different client still has its own full bucket.
            fresh = client_for(daemon, client_id="fresh")
            assert fresh.forecast(SQL_LIGHT)["weight_class"] == "feather"
            status = daemon.admission.status()
        finally:
            daemon.stop()
        assert status["quota_rejections"] >= 1
        assert "greedy" in status["clients"] and "fresh" in status["clients"]

    def test_heavy_queries_are_classified_bowling_ball(self, serve_service):
        predicted = serve_service.forecast(SQL_JOIN).metrics.elapsed_time
        daemon = start_daemon(
            serve_service, heavy_seconds=predicted / 2.0, shed_inflight=64
        )
        try:
            payload = client_for(daemon).forecast(SQL_JOIN)
        finally:
            daemon.stop()
        assert payload["weight_class"] == "bowling_ball"
        assert payload["predicted_seconds"] > predicted / 2.0

    def test_retry_after_header_on_rejection(self, serve_service):
        daemon = start_daemon(
            serve_service, quota_rate=0.001, quota_burst=0.001,
            retry_after_s=7.0,
        )
        try:
            client = client_for(daemon, client_id="greedy")
            status = 200
            for _ in range(50):
                status, payload = client.try_forecast(SQL_JOIN)
                if status != 200:
                    break
            assert status == 429
            assert payload["retry_after_s"] >= 7.0
        finally:
            daemon.stop()


class TestAdmissionUnits:
    """Sleep-free unit coverage via the injectable clock."""

    def test_token_bucket_refills_on_fake_clock(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=10.0, clock=lambda: now[0])
        ok, _ = bucket.try_charge(10.0)
        assert ok
        ok, retry = bucket.try_charge(4.0)
        assert not ok
        assert retry == pytest.approx(2.0)
        now[0] += 2.0  # 4 tokens refilled
        ok, _ = bucket.try_charge(4.0)
        assert ok

    def test_controller_sheds_heavy_only_under_load(self):
        controller = AdmissionController(
            heavy_seconds=10.0, shed_inflight=4, clock=lambda: 0.0
        )
        light = controller.review("c", 1.0, inflight=100)
        assert light.admitted and light.weight_class == "feather"
        heavy_idle = controller.review("c", 60.0, inflight=1)
        assert heavy_idle.admitted
        heavy_busy = controller.review("c", 60.0, inflight=5)
        assert not heavy_busy.admitted
        assert heavy_busy.status == 503
        assert heavy_busy.reason == "shed_heavy"
        assert heavy_busy.retry_after_s >= 60.0

    def test_shed_does_not_charge_quota(self):
        controller = AdmissionController(
            quota_rate=1.0, quota_burst=100.0, heavy_seconds=10.0,
            shed_inflight=0, clock=lambda: 0.0,
        )
        controller.review("c", 50.0, inflight=1)  # shed, not charged
        decision = controller.review("c", 50.0, inflight=0)  # admitted
        assert decision.admitted
        assert controller._bucket("c").balance() == pytest.approx(50.0)


# ----------------------------------------------------------------------
# Batcher units (fake clock, no daemon)
# ----------------------------------------------------------------------


class TestBatcherUnits:
    def test_queue_full_raises(self):
        batcher = MicroBatcher(lambda sqls: sqls, max_queue=2)
        # Collector not started: submissions just queue up.
        batcher.submit(["a"])
        batcher.submit(["b"])
        with pytest.raises(QueueFullError):
            batcher.submit(["c"])

    def test_submit_after_stop_is_refused(self):
        batcher = MicroBatcher(lambda sqls: sqls)
        batcher.start()
        assert batcher.stop()
        with pytest.raises(ServeError):
            batcher.submit(["a"])

    def test_stop_drains_queued_requests(self):
        batcher = MicroBatcher(lambda sqls: [s.upper() for s in sqls])
        first = batcher.submit(["a", "b"])
        second = batcher.submit(["c"])
        batcher.start()
        assert batcher.stop(drain=True)
        assert first.results == ["A", "B"]
        assert second.results == ["C"]

    def test_stop_without_drain_fails_queued_pendings(self):
        # Collector never started: the pending is provably still queued
        # when the no-drain stop clears the queue.
        batcher = MicroBatcher(lambda sqls: sqls)
        pending = batcher.submit(["a"])
        assert batcher.stop(drain=False)
        assert pending.event.is_set()
        assert isinstance(pending.error, ServeError)
        assert batcher.depth() == 0

    def test_batch_error_fans_out_to_all_pendings(self):
        def boom(sqls):
            raise ValueError("model fell over")

        batcher = MicroBatcher(boom, max_batch=8, max_wait_s=0.0)
        first = batcher.submit(["a"])
        second = batcher.submit(["b"])
        batcher.start()
        assert first.event.wait(5) and second.event.wait(5)
        assert isinstance(first.error, ValueError)
        assert isinstance(second.error, ValueError)
        batcher.stop()

    def test_result_length_mismatch_is_an_error(self):
        batcher = MicroBatcher(lambda sqls: [1], max_wait_s=0.0)
        pending = batcher.submit(["a", "b"])
        batcher.start()
        assert pending.event.wait(5)
        assert isinstance(pending.error, ServeError)
        batcher.stop()


# ----------------------------------------------------------------------
# Hot reload
# ----------------------------------------------------------------------


def train_artifact(tmp_path, name, tpcds_catalog, config, mini_corpus, **kw):
    service = QueryPerformancePredictor(tpcds_catalog, config=config, **kw)
    # Embed the session catalog's recipe (set before fit_corpus, which
    # snapshots it into the pipeline metadata) so load()/resolve_artifact
    # can rebuild the environment from the artifact alone.
    service._catalog_spec = {
        "kind": "tpcds", "scale_factor": 0.15, "seed": 123,
    }
    service.fit_corpus(mini_corpus)
    path = tmp_path / name
    service.save(path)
    return path, service


class TestHotReload:
    def test_admin_reload_swaps_model_version(
        self, tmp_path, tpcds_catalog, config, mini_corpus
    ):
        path_a, _ = train_artifact(
            tmp_path, "a.npz", tpcds_catalog, config, mini_corpus
        )
        path_b, _ = train_artifact(
            tmp_path, "b.npz", tpcds_catalog, config, mini_corpus,
            k_neighbors=5,
        )
        daemon = PredictionDaemon(
            artifact=path_a, config=ServeConfig(max_batch=4)
        )
        daemon.start()
        try:
            client = client_for(daemon)
            version_a = client.health()["model_version"]
            assert version_a == artifact_fingerprint(path_a)
            reloaded = client.reload(str(path_b))
            assert reloaded["model_version"] == artifact_fingerprint(path_b)
            assert client.health()["model_version"] != version_a
        finally:
            daemon.stop()

    def test_reload_without_artifact_is_structured_409(self, serve_service):
        daemon = start_daemon(serve_service)
        try:
            client = client_for(daemon)
            status, payload = client._request("POST", "/admin/reload", {})
            assert status == 409
            assert payload["error"] == "reload_failed"
        finally:
            daemon.stop()

    def test_sighup_triggers_reload(
        self, tmp_path, tpcds_catalog, config, mini_corpus
    ):
        path_a, service_a = train_artifact(
            tmp_path, "a.npz", tpcds_catalog, config, mini_corpus
        )
        path_b, _ = train_artifact(
            tmp_path, "b.npz", tpcds_catalog, config, mini_corpus,
            k_neighbors=5,
        )
        daemon = PredictionDaemon(artifact=path_a, config=ServeConfig())
        daemon.start()
        try:
            # Repoint the daemon's artifact path, then poke it with
            # SIGHUP — the operational "new model dropped" signal.
            daemon._artifact_path = path_b
            signal.raise_signal(signal.SIGHUP)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if daemon.model_version == artifact_fingerprint(path_b):
                    break
                time.sleep(0.01)
            assert daemon.model_version == artifact_fingerprint(path_b)
        finally:
            daemon.stop()

    def test_reload_under_load_never_drops_or_mixes(
        self, tmp_path, tpcds_catalog, config, mini_corpus
    ):
        path_a, service_a = train_artifact(
            tmp_path, "a.npz", tpcds_catalog, config, mini_corpus
        )
        path_b, service_b = train_artifact(
            tmp_path, "b.npz", tpcds_catalog, config, mini_corpus,
            k_neighbors=5,
        )
        version_a = artifact_fingerprint(path_a)
        version_b = artifact_fingerprint(path_b)
        expected = {
            version_a: float(service_a.forecast(SQL_JOIN).metrics.elapsed_time),
            version_b: float(service_b.forecast(SQL_JOIN).metrics.elapsed_time),
        }
        daemon = PredictionDaemon(
            artifact=path_a,
            config=ServeConfig(max_batch=4, max_wait_ms=10.0),
        )
        host, port = daemon.start()
        outcomes = []
        lock = threading.Lock()
        stop_firing = threading.Event()

        def fire(index: int) -> None:
            client = ServeClient(host, port, client_id=f"c{index}")
            while not stop_firing.is_set():
                payload = client.forecast(SQL_JOIN)
                with lock:
                    outcomes.append(
                        (
                            payload["model_version"],
                            payload["forecast"]["metrics"]["elapsed_time"],
                        )
                    )

        threads = [
            threading.Thread(target=fire, args=(i,)) for i in range(4)
        ]
        try:
            for thread in threads:
                thread.start()
            reload_client = ServeClient(host, port)
            for _ in range(20):
                if len(outcomes) >= 8:
                    break
                time.sleep(0.05)
            reload_client.reload(str(path_b))
            for _ in range(40):
                with lock:
                    if any(v == version_b for v, _ in outcomes):
                        break
                time.sleep(0.05)
            stop_firing.set()
            for thread in threads:
                thread.join(timeout=60)
        finally:
            stop_firing.set()
            daemon.stop()
        assert outcomes, "no responses collected"
        versions = {version for version, _ in outcomes}
        assert versions <= {version_a, version_b}
        assert version_b in versions, "reload never took effect"
        # No mixed responses: every answer matches the exact numbers of
        # the version that claims to have served it.
        for version, elapsed in outcomes:
            assert elapsed == expected[version], (version, elapsed)


# ----------------------------------------------------------------------
# Shutdown
# ----------------------------------------------------------------------


class TestShutdown:
    def test_stop_drains_inflight_requests(self, serve_service):
        # A huge batch window: the collector holds the batch open, so
        # the requests are provably still queued when stop() arrives.
        daemon = start_daemon(serve_service, max_batch=8, max_wait_ms=5000.0)
        host, port = daemon.address
        results = []
        lock = threading.Lock()

        def one(index: int) -> None:
            client = ServeClient(host, port, client_id=f"c{index}")
            payload = client.forecast(SQL_LIGHT)
            with lock:
                results.append(payload["model_version"])

        threads = [threading.Thread(target=one, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            if daemon.batcher.stats()["queued_statements"] >= 4:
                break
            time.sleep(0.005)
        assert daemon.batcher.stats()["queued_statements"] >= 4
        daemon.stop(drain=True)  # must answer the held batch, not drop it
        for thread in threads:
            thread.join(timeout=60)
        assert len(results) == 4

    def test_stopped_daemon_refuses_politely(self, serve_service):
        daemon = start_daemon(serve_service)
        daemon.stop()
        with pytest.raises(ServeError):
            daemon.address  # noqa: B018 (property raises once stopped)

    def test_context_manager_lifecycle(self, serve_service):
        with PredictionDaemon(
            service=serve_service, config=ServeConfig()
        ) as daemon:
            payload = client_for(daemon).forecast(SQL_LIGHT)
            assert payload["model_version"] == daemon.model_version
        with pytest.raises(ServeError):
            daemon.address  # noqa: B018


# ----------------------------------------------------------------------
# Load generator + drills
# ----------------------------------------------------------------------


class TestLoadGenerator:
    def test_schedule_is_deterministic(self, load_schedule):
        first = load_schedule(50, seed=11, n_clients=3)
        second = load_schedule(50, seed=11, n_clients=3)
        assert first == second
        assert [r.offset_s for r in first] == sorted(
            r.offset_s for r in first
        )
        assert {r.client for r in first} <= {f"client-{i}" for i in range(3)}

    def test_different_seeds_differ(self, load_schedule):
        a = load_schedule(30, seed=1)
        b = load_schedule(30, seed=2)
        assert [r.sql for r in a] != [r.sql for r in b]

    def test_load_drill_zero_drops(self, serve_service, load_schedule):
        daemon = start_daemon(
            serve_service, max_batch=16, max_wait_ms=10.0, max_queue=512
        )
        try:
            schedule = load_schedule(60, seed=5, n_clients=4)
            report = run_load(daemon.address, schedule, max_workers=8)
            stats = daemon.batcher.stats()
        finally:
            daemon.stop()
        assert report.total == 60
        assert report.dropped == 0
        assert report.ok == 60
        assert stats["batches"] < 60  # micro-batching collapsed requests
        summary = report.summary()
        assert summary["p99_ms"] >= summary["p50_ms"] > 0


# ----------------------------------------------------------------------
# Artifact resolution (shared CLI/daemon fingerprint cache)
# ----------------------------------------------------------------------


class TestResolveArtifact:
    def test_cache_hit_returns_same_service(
        self, tmp_path, tpcds_catalog, config, mini_corpus
    ):
        clear_artifact_cache()
        path, _ = train_artifact(
            tmp_path, "m.npz", tpcds_catalog, config, mini_corpus
        )
        fingerprint_a, service_a = resolve_artifact(path)
        fingerprint_b, service_b = resolve_artifact(path)
        assert fingerprint_a == fingerprint_b == artifact_fingerprint(path)
        assert service_a is service_b
        assert service_a.artifact_fingerprint == fingerprint_a

    def test_stale_cache_after_retrain_is_evicted(
        self, tmp_path, tpcds_catalog, config, mini_corpus
    ):
        """Regression: retraining over the same path must invalidate the
        in-process cache (previously the CLI served the stale model)."""
        clear_artifact_cache()
        path, _ = train_artifact(
            tmp_path, "m.npz", tpcds_catalog, config, mini_corpus
        )
        fingerprint_old, service_old = resolve_artifact(path)
        # Retrain with different hyperparameters and overwrite in place.
        _, retrained = train_artifact(
            tmp_path, "m.npz", tpcds_catalog, config, mini_corpus,
            k_neighbors=5,
        )
        fingerprint_new, service_new = resolve_artifact(path)
        assert fingerprint_new != fingerprint_old
        assert service_new is not service_old
        assert (
            float(service_new.forecast(SQL_JOIN).metrics.elapsed_time)
            == float(retrained.forecast(SQL_JOIN).metrics.elapsed_time)
        )

    def test_missing_artifact_is_model_error(self, tmp_path):
        from repro.errors import ModelError

        with pytest.raises(ModelError):
            artifact_fingerprint(tmp_path / "nope.npz")

    def test_uncached_resolution_always_reloads(
        self, tmp_path, tpcds_catalog, config, mini_corpus
    ):
        clear_artifact_cache()
        path, _ = train_artifact(
            tmp_path, "m.npz", tpcds_catalog, config, mini_corpus
        )
        _, service_a = resolve_artifact(path, cache=False)
        _, service_b = resolve_artifact(path, cache=False)
        assert service_a is not service_b
