"""Resource model and metrics accounting tests."""

import numpy as np
import pytest

from repro.engine.metrics import (
    METRIC_NAMES,
    MetricsAccumulator,
    PerformanceMetrics,
)
from repro.engine.system import production_32node, research_4node
from repro.engine.timing import ResourceModel
from repro.storage.buffer import BufferPool
from repro.storage.catalog import Catalog
from repro.storage.table import Column, Schema, Table


def make_env(cache_bytes=10**9, **config_overrides):
    from dataclasses import replace

    config = replace(research_4node(), **config_overrides)
    catalog = Catalog()
    schema = Schema([Column("id", "int"), Column("v", "float")])
    table = Table(
        "t", schema, {"id": np.arange(10_000), "v": np.zeros(10_000)}
    )
    catalog.register(table)
    pool = BufferPool(catalog, cache_bytes)
    acc = MetricsAccumulator()
    return config, catalog, pool, acc, table


class TestPerformanceMetrics:
    def test_vector_round_trip(self):
        metrics = PerformanceMetrics(1.5, 100, 50, 3, 7, 9000)
        restored = PerformanceMetrics.from_vector(metrics.as_vector())
        assert restored == PerformanceMetrics(1.5, 100, 50, 3, 7, 9000)

    def test_vector_ordering_matches_names(self):
        metrics = PerformanceMetrics(1.0, 2, 3, 4, 5, 6)
        vector = metrics.as_vector()
        for index, name in enumerate(METRIC_NAMES):
            assert vector[index] == getattr(metrics, name)


class TestAccumulator:
    def test_buckets(self):
        acc = MetricsAccumulator()
        acc.charge_time("scan", 1.0, "cpu")
        acc.charge_time("scan", 0.5, "io")
        acc.charge_time("exchange", 0.25, "net")
        assert acc.cpu_seconds == 1.0
        assert acc.io_seconds == 0.5
        assert acc.net_seconds == 0.25
        assert acc.busy_seconds == 1.75
        assert acc.operator_seconds["scan"] == 1.5

    def test_unknown_bucket(self):
        with pytest.raises(ValueError):
            MetricsAccumulator().charge_time("x", 1.0, "gpu")


class TestScanCharges:
    def test_resident_scan_no_disk(self):
        config, _cat, pool, acc, table = make_env()
        model = ResourceModel(config, pool, acc)
        model.scan("file_scan", table, 100, skew=1.0)
        assert acc.disk_ios == 0
        assert acc.records_accessed == 10_000
        assert acc.records_used == 100
        assert acc.cpu_seconds > 0

    def test_non_resident_scan_reads_pages(self):
        config, _cat, pool, acc, table = make_env(cache_bytes=10)
        model = ResourceModel(config, pool, acc)
        model.scan("file_scan", table, 100, skew=1.0)
        assert acc.disk_ios == table.page_count(config.page_bytes)
        assert acc.io_seconds > 0

    def test_skew_slows_elapsed(self):
        config, _cat, pool, acc1, table = make_env()
        ResourceModel(config, pool, acc1).scan("s", table, 100, skew=1.0)
        acc2 = MetricsAccumulator()
        ResourceModel(config, pool, acc2).scan("s", table, 100, skew=2.0)
        assert acc2.cpu_seconds == pytest.approx(2 * acc1.cpu_seconds)


class TestJoinCharges:
    def test_small_join_no_spill(self):
        config, _cat, pool, acc, _t = make_env()
        model = ResourceModel(config, pool, acc)
        model.hash_join("hj", 1000, 1000, 32_000.0, 500, 1.0)
        assert acc.disk_ios == 0

    def test_large_build_spills(self):
        config, _cat, pool, acc, _t = make_env()
        model = ResourceModel(config, pool, acc)
        big = 100 * config.work_mem_bytes * config.n_nodes
        model.hash_join("hj", 10_000_000, 10_000_000, float(big), 1, 1.0)
        assert acc.disk_ios > 0

    def test_spill_passes_monotone(self):
        config, _cat, pool, acc, _t = make_env()
        model = ResourceModel(config, pool, acc)
        fits = config.work_mem_bytes * config.n_nodes
        assert model.spill_passes(fits) == 0
        assert model.spill_passes(fits * 2) >= 1
        assert model.spill_passes(fits * 8) > model.spill_passes(fits * 2)

    def test_nested_join_quadratic(self):
        config, _cat, pool, acc1, _t = make_env()
        ResourceModel(config, pool, acc1).nested_join("nl", 1000, 1000, 0, 1.0)
        acc2 = MetricsAccumulator()
        ResourceModel(config, pool, acc2).nested_join("nl", 2000, 2000, 0, 1.0)
        assert acc2.cpu_seconds == pytest.approx(4 * acc1.cpu_seconds)


class TestExchangeCharges:
    @pytest.mark.parametrize("kind", ["repartition", "broadcast", "collect"])
    def test_messages_and_bytes_positive(self, kind):
        config, _cat, pool, acc, _t = make_env()
        ResourceModel(config, pool, acc).exchange("ex", 10_000, 32.0, kind)
        assert acc.message_count > 0
        assert acc.message_bytes > 0

    def test_broadcast_ships_most(self):
        config, _cat, pool, _acc, _t = make_env()
        results = {}
        for kind in ("repartition", "broadcast", "collect"):
            acc = MetricsAccumulator()
            ResourceModel(config, pool, acc).exchange("ex", 10_000, 32.0, kind)
            results[kind] = acc.message_bytes
        assert results["broadcast"] > results["collect"] > results["repartition"]

    def test_unknown_kind(self):
        config, _cat, pool, acc, _t = make_env()
        with pytest.raises(ValueError):
            ResourceModel(config, pool, acc).exchange("ex", 1, 1.0, "scatter")

    def test_more_nodes_cost_more_messages(self):
        few = research_4node()
        many = production_32node(32)
        counts = {}
        for config in (few, many):
            catalog = Catalog()
            pool = BufferPool(catalog, 10**9)
            acc = MetricsAccumulator()
            ResourceModel(config, pool, acc).exchange(
                "ex", 10_000, 32.0, "repartition"
            )
            counts[config.n_nodes] = acc.message_count
        assert counts[32] > counts[4]


class TestElapsed:
    def test_includes_startup(self):
        config, _cat, pool, acc, _t = make_env()
        model = ResourceModel(config, pool, acc)
        assert model.elapsed_seconds() == pytest.approx(config.startup_s)

    def test_noise_is_multiplicative_and_seeded(self):
        config, _cat, pool, acc, table = make_env()
        model = ResourceModel(config, pool, acc)
        model.scan("s", table, 100, 1.0)
        base = model.elapsed_seconds()
        noisy1 = model.elapsed_seconds(np.random.default_rng(7))
        noisy2 = model.elapsed_seconds(np.random.default_rng(7))
        assert noisy1 == noisy2
        assert noisy1 != base
        assert 0.5 * base < noisy1 < 2.0 * base

    def test_parallelism_speeds_up(self):
        """The same work takes less time on more nodes."""
        times = {}
        for nodes in (4, 32):
            config = production_32node(nodes)
            catalog = Catalog()
            pool = BufferPool(catalog, 10**9)
            acc = MetricsAccumulator()
            model = ResourceModel(config, pool, acc)
            model.hash_join("hj", 10_000, 10_000, 1000.0, 1000, 1.0)
            times[nodes] = model.elapsed_seconds()
        assert times[32] < times[4]


class TestSortAndGroupCharges:
    def test_sort_superlinear(self):
        config, _cat, pool, _acc, _t = make_env()
        costs = []
        for rows in (1000, 2000):
            acc = MetricsAccumulator()
            ResourceModel(config, pool, acc).sort("s", rows, 8.0, 1.0)
            costs.append(acc.cpu_seconds)
        assert costs[1] > 2 * costs[0]

    def test_zero_rows_free(self):
        config, _cat, pool, acc, _t = make_env()
        ResourceModel(config, pool, acc).sort("s", 0, 8.0, 1.0)
        ResourceModel(config, pool, acc).top_n("t", 0, 5, 1.0)
        assert acc.busy_seconds == 0

    def test_group_by_spills_with_many_groups(self):
        config, _cat, pool, acc, _t = make_env()
        big_state = 100.0 * config.work_mem_bytes * config.n_nodes
        ResourceModel(config, pool, acc).group_by(
            "g", 1_000_000, 1_000_000, big_state, 1.0
        )
        assert acc.disk_ios > 0
