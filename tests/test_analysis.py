"""Pack A of repro.analysis: the AST rule engine and codebase contracts.

Every RD rule gets a violating and a clean fixture (tests/fixtures/lint/),
linted under a virtual repo-relative path so the scoped rules (RD004,
RD008, RD009) see the directory they guard.  On top of the per-rule
pairs: suppression comments, the JSON report schema, the runner, and the
self-lint invariant that ``src/repro`` itself is clean.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.analysis import (
    CODE_RULES,
    CheckReport,
    Finding,
    all_rules,
    lint_source,
    run_checks,
    self_lint,
)
from repro.analysis.engine import (
    dotted_name,
    findings_to_report,
    parse_suppressions,
)
from repro.analysis.findings import LINT_SCHEMA_VERSION
from repro.analysis.rules import RuleInfo, get, is_known, register

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
REPO_ROOT = Path(__file__).resolve().parents[1]

#: A path outside every rule scope/allowlist — the neutral default.
NEUTRAL_PATH = "repro/workloads/fixture.py"
#: A path inside the strict-typing + no-swallowing scope.
CORE_PATH = "repro/core/fixture.py"


def lint_fixture(name: str, relpath: str = NEUTRAL_PATH) -> list[Finding]:
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return lint_source(source, relpath, CODE_RULES)


# ----------------------------------------------------------------------
# Per-rule fixture pairs
# ----------------------------------------------------------------------

PAIRS = [
    ("rd001", "RD001", NEUTRAL_PATH),
    ("rd002", "RD002", NEUTRAL_PATH),
    ("rd003", "RD003", NEUTRAL_PATH),
    ("rd004", "RD004", NEUTRAL_PATH),
    ("rd005", "RD005", NEUTRAL_PATH),
    ("rd006", "RD006", NEUTRAL_PATH),
    ("rd007", "RD007", NEUTRAL_PATH),
    ("rd008", "RD008", CORE_PATH),
    ("rd009", "RD009", CORE_PATH),
    ("rd010", "RD010", NEUTRAL_PATH),
    ("rd011", "RD011", NEUTRAL_PATH),
    ("rd012", "RD012", NEUTRAL_PATH),
    ("rd013", "RD013", NEUTRAL_PATH),
]


class TestRulePairs:
    @pytest.mark.parametrize("stem,rule_id,relpath", PAIRS)
    def test_bad_fixture_flags_exactly_its_rule(self, stem, rule_id, relpath):
        findings = lint_fixture(f"{stem}_bad.py", relpath)
        assert findings, f"{stem}_bad.py produced no findings"
        assert {f.rule_id for f in findings} == {rule_id}

    @pytest.mark.parametrize("stem,rule_id,relpath", PAIRS)
    def test_ok_fixture_is_clean(self, stem, rule_id, relpath):
        assert lint_fixture(f"{stem}_ok.py", relpath) == []

    @pytest.mark.parametrize("stem,rule_id,relpath", PAIRS)
    def test_findings_carry_rule_metadata(self, stem, rule_id, relpath):
        for finding in lint_fixture(f"{stem}_bad.py", relpath):
            info = get(finding.rule_id)
            assert info.severity == finding.severity == "error"
            assert finding.path == relpath
            assert finding.line >= 1

    def test_parse_error_is_rd000(self):
        findings = lint_fixture("rd000_bad.py")
        assert [f.rule_id for f in findings] == ["RD000"]
        assert findings[0].severity == "error"

    def test_rd007_flags_both_lambda_and_nested_def(self):
        findings = lint_fixture("rd007_bad.py")
        assert len(findings) == 2
        messages = " ".join(f.message for f in findings)
        assert "lambda" in messages and "helper" in messages


class TestRuleScoping:
    def test_rd004_allowlisted_paths_may_read_the_clock(self):
        source = (FIXTURES / "rd004_bad.py").read_text()
        for allowed in (
            "repro/obs/clock.py",
            "repro/engine/timing.py",
            "repro/resilience/breaker.py",
        ):
            assert lint_source(source, allowed, CODE_RULES) == []

    def test_rd008_only_guards_core_and_pipeline(self):
        source = (FIXTURES / "rd008_bad.py").read_text()
        assert lint_source(source, "repro/engine/fixture.py", CODE_RULES) == []
        assert lint_source(source, "repro/pipeline/fixture.py", CODE_RULES)

    def test_rd009_only_guards_the_strict_dirs(self):
        source = (FIXTURES / "rd009_bad.py").read_text()
        assert lint_source(source, "repro/engine/fixture.py", CODE_RULES) == []
        assert lint_source(source, "repro/analysis/fixture.py", CODE_RULES)

    def test_rd002_exempts_the_rng_module(self):
        source = (FIXTURES / "rd002_bad.py").read_text()
        assert lint_source(source, "repro/rng.py", CODE_RULES) == []

    def test_rd005_exempts_ioutils(self):
        source = (FIXTURES / "rd005_bad.py").read_text()
        assert lint_source(source, "repro/ioutils.py", CODE_RULES) == []

    def test_rd011_exempts_ioutils(self):
        source = (FIXTURES / "rd011_bad.py").read_text()
        assert lint_source(source, "repro/ioutils.py", CODE_RULES) == []

    def test_rd012_exempts_the_serve_package(self):
        source = (FIXTURES / "rd012_bad.py").read_text()
        assert lint_source(source, "repro/serve/fixture.py", CODE_RULES) == []

    def test_rd013_exempts_supervisor_and_resilience(self):
        source = (FIXTURES / "rd013_bad.py").read_text()
        for allowed in (
            "repro/serve/supervisor.py",
            "repro/resilience/faults.py",
        ):
            assert lint_source(source, allowed, CODE_RULES) == []

    def test_rd013_flags_each_process_control_call(self):
        findings = lint_fixture("rd013_bad.py")
        assert len(findings) == 3
        messages = " ".join(f.message for f in findings)
        assert "os.kill" in messages
        assert "os.fork" in messages
        assert "signal.signal" in messages

    def test_rd006_ignores_on_without_resilience_import(self):
        source = 'plan.on("bogus.site", mode="raise")\n'
        assert lint_source(source, NEUTRAL_PATH, CODE_RULES) == []

    def test_rd006_fstring_prefix(self):
        source = (
            "from repro.resilience.faults import FaultPlan\n"
            'p = FaultPlan(seed=0).on(f"nonsense.{x}", mode="raise")\n'
        )
        findings = lint_source(source, NEUTRAL_PATH, CODE_RULES)
        assert [f.rule_id for f in findings] == ["RD006"]
        ok = (
            "from repro.resilience.faults import FaultPlan\n"
            'p = FaultPlan(seed=0).on(f"fallback.{x}", mode="raise")\n'
        )
        assert lint_source(ok, NEUTRAL_PATH, CODE_RULES) == []


class TestSuppressions:
    def test_allow_comment_silences_exactly_that_rule(self):
        assert lint_fixture("suppressed.py") == []

    def test_allow_comment_for_another_rule_does_not_silence(self):
        source = (
            "import numpy as np\n"
            "rng = np.random.default_rng()  # repro: allow[RD005]\n"
        )
        findings = lint_source(source, NEUTRAL_PATH, CODE_RULES)
        assert [f.rule_id for f in findings] == ["RD001"]

    def test_parse_suppressions_multiple_ids(self):
        allowed = parse_suppressions(
            "x = 1\ny = 2  # repro: allow[RD001, RD005]\n"
        )
        assert allowed == {2: frozenset({"RD001", "RD005"})}

    def test_suppression_only_applies_to_its_line(self):
        source = (
            "import numpy as np\n"
            "# repro: allow[RD001]\n"
            "rng = np.random.default_rng()\n"
        )
        findings = lint_source(source, NEUTRAL_PATH, CODE_RULES)
        assert [f.rule_id for f in findings] == ["RD001"]


class TestRegistryAndReport:
    def test_registry_knows_both_packs(self):
        code_ids = {info.id for info in all_rules(pack="code")}
        plan_ids = {info.id for info in all_rules(pack="plan")}
        assert {f"RD00{i}" for i in range(10)} <= code_ids
        assert {f"PL00{i}" for i in range(1, 6)} == plan_ids
        assert is_known("RD001") and not is_known("RD999")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError):
            register(
                RuleInfo(
                    id="RD001",
                    name="duplicate",
                    severity="error",
                    pack="code",
                    summary="clash",
                )
            )

    def test_dotted_name(self):
        import ast

        expr = ast.parse("a.b.c()").body[0].value
        assert dotted_name(expr.func) == "a.b.c"
        subscripted = ast.parse("a[0].b()").body[0].value
        assert dotted_name(subscripted.func) is None

    def test_json_report_schema_and_ordering(self):
        findings = lint_fixture("rd001_bad.py") + lint_fixture(
            "rd008_bad.py", CORE_PATH
        )
        report = findings_to_report(findings)
        assert report["schema_version"] == LINT_SCHEMA_VERSION
        assert report["count"] == len(findings)
        rows = report["findings"]
        assert rows == sorted(
            rows,
            key=lambda r: (r["path"], r["line"], r["column"], r["rule_id"]),
        )
        for row in rows:
            assert set(row) == {
                "rule_id", "severity", "path", "line", "column", "message",
            }

    def test_finding_render(self):
        finding = lint_fixture("rd001_bad.py")[0]
        assert finding.render().startswith(
            f"{NEUTRAL_PATH}:{finding.line}:{finding.column}: RD001 "
        )


class TestRunner:
    def test_self_lint_is_clean(self):
        assert self_lint() == []

    def test_run_checks_clean_repo(self):
        report = run_checks(repo_root=REPO_ROOT, with_mypy=False)
        assert isinstance(report, CheckReport)
        assert report.exit_code == 0 and report.clean
        payload = report.as_dict()
        assert payload["clean"] is True
        assert payload["schema_version"] == LINT_SCHEMA_VERSION
        assert payload["mypy"]["ran"] is False

    def test_run_checks_flags_a_violating_package(self, tmp_path):
        package = tmp_path / "repro"
        package.mkdir()
        (package / "bad.py").write_text(
            "import numpy as np\nrng = np.random.default_rng()\n"
        )
        report = run_checks(
            repo_root=REPO_ROOT, package_root=package, with_mypy=False
        )
        assert report.exit_code == 1 and not report.clean
        assert [f["rule_id"] for f in report.as_dict()["findings"]] == [
            "RD001"
        ]

    def test_check_script_end_to_end(self):
        proc = subprocess.run(
            [
                sys.executable,
                str(REPO_ROOT / "scripts" / "check.py"),
                "--format",
                "json",
                "--no-mypy",
            ],
            capture_output=True,
            text=True,
            cwd=REPO_ROOT,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["clean"] is True and payload["count"] == 0
