"""PlanNode structure tests: arity validation, traversal, rendering."""

import pytest

from repro.engine.plan import AggregateSpec, OperatorKind, PlanNode
from repro.errors import PlanError


def scan(name="t", binding="t", rows=10.0):
    return PlanNode(
        kind=OperatorKind.FILE_SCAN,
        table_name=name,
        binding=binding,
        estimated_rows=rows,
    )


class TestArity:
    def test_scan_takes_no_children(self):
        with pytest.raises(PlanError):
            PlanNode(kind=OperatorKind.FILE_SCAN, children=(scan(),))

    def test_join_needs_two_children(self):
        with pytest.raises(PlanError):
            PlanNode(kind=OperatorKind.HASH_JOIN, children=(scan(),))

    def test_sort_needs_one_child(self):
        with pytest.raises(PlanError):
            PlanNode(kind=OperatorKind.SORT, children=())

    def test_child_accessors(self):
        node = PlanNode(kind=OperatorKind.SORT, children=(scan(),))
        assert node.child.kind == OperatorKind.FILE_SCAN
        with pytest.raises(PlanError):
            _ = node.left

    def test_left_right(self):
        join = PlanNode(
            kind=OperatorKind.HASH_JOIN,
            children=(scan("a", "a"), scan("b", "b")),
            join_pairs=(("a.x", "b.y"),),
        )
        assert join.left.binding == "a"
        assert join.right.binding == "b"


class TestTraversal:
    def make_tree(self):
        join = PlanNode(
            kind=OperatorKind.HASH_JOIN,
            children=(scan("a", "a", 100), scan("b", "b", 50)),
            join_pairs=(("a.x", "b.y"),),
            estimated_rows=200.0,
        )
        return PlanNode(
            kind=OperatorKind.ROOT, children=(join,), estimated_rows=200.0
        )

    def test_walk_preorder(self):
        kinds = [node.kind for node in self.make_tree().walk()]
        assert kinds == [
            OperatorKind.ROOT,
            OperatorKind.HASH_JOIN,
            OperatorKind.FILE_SCAN,
            OperatorKind.FILE_SCAN,
        ]

    def test_operator_counts(self):
        counts = self.make_tree().operator_counts()
        assert counts == {"root": 1, "hash_join": 1, "file_scan": 2}

    def test_cardinality_sums(self):
        sums = self.make_tree().cardinality_sums()
        assert sums["file_scan"] == 150.0
        assert sums["hash_join"] == 200.0

    def test_pretty_contains_structure(self):
        text = self.make_tree().pretty()
        assert "root" in text
        assert "hash_join (a.x=b.y)" in text
        assert "[a as a]" in text
        assert text.count("\n") == 3

    def test_pretty_shows_exchange_kind(self):
        node = PlanNode(
            kind=OperatorKind.EXCHANGE,
            children=(scan(),),
            exchange_kind="broadcast",
        )
        assert "(broadcast)" in node.pretty()

    def test_pretty_shows_group_keys(self):
        node = PlanNode(
            kind=OperatorKind.HASH_GROUPBY,
            children=(scan(),),
            group_keys=("t.a",),
            aggregates=(AggregateSpec("count", None, "c"),),
        )
        assert "(by t.a)" in node.pretty()
