"""The shared-memory data plane for corpus builds.

Covers the PR-7 invariants:

* ``share_catalog``/``attach_catalog`` round-trip columns and statistics
  bit-for-bit on both backends (shm and mmap spill);
* chunked, mmap, pickle and warm-pool parallel builds are all bitwise
  identical to the serial build;
* kill -> resume through a checkpoint journal stays bitwise identical
  when the build is chunked;
* no shared segment outlives a build — after normal completion, after a
  worker killed mid-build, and after fault-injected attach failures the
  plane registry and /dev/shm are clean.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.errors import CorpusBuildError, ReproError
from repro.experiments.corpus import build_corpus
from repro.experiments.workerpool import warm_pool, warmed_pool
from repro.ioutils import active_plane_names
from repro.resilience.faults import FaultPlan, armed
from repro.storage.shared import attach_catalog, share_catalog
from repro.workloads.generator import generate_pool


@pytest.fixture(scope="module")
def pool():
    return generate_pool(10, seed=23)


@pytest.fixture(scope="module")
def serial_corpus(tpcds_catalog, config, pool):
    return build_corpus(tpcds_catalog, config, pool, noise_seed=5)


def _shm_segments() -> set:
    """Names currently present in /dev/shm (empty off-Linux)."""
    try:
        return {
            name for name in os.listdir("/dev/shm")
            if not name.startswith("sem.")
        }
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


def assert_identical(a, b):
    assert [q.query_id for q in a.queries] == [q.query_id for q in b.queries]
    assert np.array_equal(a.feature_matrix(), b.feature_matrix())
    assert np.array_equal(a.sql_feature_matrix(), b.sql_feature_matrix())
    assert np.array_equal(a.performance_matrix(), b.performance_matrix())
    assert np.array_equal(a.optimizer_costs(), b.optimizer_costs())


# ----------------------------------------------------------------------
# share/attach round-trip
# ----------------------------------------------------------------------


class TestCatalogRoundTrip:
    @pytest.mark.parametrize("backend", ["shm", "mmap"])
    def test_attach_is_bitwise_the_publishers_data(
        self, tpcds_catalog, backend
    ):
        with share_catalog(tpcds_catalog, backend=backend) as shared:
            assert shared.backend == backend
            attached = attach_catalog(shared.descriptor)
            mirror = attached.catalog
            assert mirror.table_names == tpcds_catalog.table_names
            for name in tpcds_catalog.table_names:
                table = tpcds_catalog.table(name)
                twin = mirror.table(name)
                for col in table.schema:
                    ours = table.column(col.name)
                    theirs = twin.column(col.name)
                    assert ours.dtype == theirs.dtype
                    assert np.array_equal(ours, theirs)
            attached.close()
        assert active_plane_names() == ()

    def test_statistics_ship_without_reanalyze(self, tpcds_catalog):
        with share_catalog(tpcds_catalog) as shared:
            attached = attach_catalog(shared.descriptor)
            for name in tpcds_catalog.table_names:
                ours = tpcds_catalog.stats(name)
                theirs = attached.catalog.stats(name)
                assert theirs.row_count == ours.row_count
                assert theirs.page_count == ours.page_count
                for col_name, col_stats in ours.columns.items():
                    twin = theirs.column(col_name)
                    assert twin.n_distinct == col_stats.n_distinct
                    assert twin.min_value == col_stats.min_value
                    assert twin.max_value == col_stats.max_value
                    if col_stats.histogram is None:
                        assert twin.histogram is None
                    else:
                        assert np.array_equal(
                            twin.histogram, col_stats.histogram
                        )
            attached.close()

    def test_descriptor_is_small_and_picklable(self, tpcds_catalog):
        import pickle

        with share_catalog(tpcds_catalog) as shared:
            blob = pickle.dumps(shared.descriptor)
            # The whole point: attachment tickets stay KB-sized no
            # matter how large the tables are.
            assert len(blob) < 64 * 1024
            assert pickle.loads(blob).handle.name == shared.plane_name


# ----------------------------------------------------------------------
# Build identity across planes, chunking and the warm pool
# ----------------------------------------------------------------------


class TestBuildIdentity:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"chunk_size": 3},
            {"chunk_size": 1},
            {"data_plane": "mmap"},
            {"data_plane": "pickle"},
        ],
        ids=["chunk3", "chunk1", "mmap", "pickle"],
    )
    def test_parallel_matches_serial(
        self, tpcds_catalog, config, pool, serial_corpus, kwargs
    ):
        parallel = build_corpus(
            tpcds_catalog, config, pool, noise_seed=5, jobs=2, **kwargs
        )
        assert_identical(serial_corpus, parallel)
        assert active_plane_names() == ()

    def test_warm_pool_reuses_workers_and_matches(
        self, tpcds_catalog, config, pool, serial_corpus
    ):
        with warmed_pool() as warm:
            first = build_corpus(
                tpcds_catalog, config, pool, noise_seed=5, jobs=2
            )
            executor_after_first = warm._executor
            second = build_corpus(
                tpcds_catalog, config, pool, noise_seed=5, jobs=2
            )
            # Same executor object served both builds, and the catalog
            # plane stayed published between them.
            assert warm._executor is executor_after_first
            assert warm.jobs == 2
            assert active_plane_names() != ()
        assert_identical(serial_corpus, first)
        assert_identical(serial_corpus, second)
        assert warm_pool() is None
        assert active_plane_names() == ()

    def test_chunked_kill_then_resume_is_bitwise_identical(
        self, tpcds_catalog, config, pool, serial_corpus, tmp_path
    ):
        journal = tmp_path / "build.journal"
        target = pool[6].query_id
        plan = FaultPlan(seed=3).on(
            "corpus.execute", mode="exit",
            calls=set(range(1, len(pool) + 1)),
            match={"query_id": target},
        )
        with armed(plan):
            with pytest.raises(CorpusBuildError):
                build_corpus(
                    tpcds_catalog, config, pool, noise_seed=5, jobs=2,
                    chunk_size=2, checkpoint=journal,
                )
        # The journal survived the crash with some completed queries...
        assert journal.exists()
        assert active_plane_names() == ()
        # ...and the resumed chunked build finishes bitwise identical.
        resumed = build_corpus(
            tpcds_catalog, config, pool, noise_seed=5, jobs=2,
            chunk_size=2, checkpoint=journal,
        )
        assert not journal.exists()
        assert_identical(serial_corpus, resumed)


# ----------------------------------------------------------------------
# Segment lifecycle: nothing leaks
# ----------------------------------------------------------------------


class TestSegmentLifecycle:
    def test_normal_completion_leaves_no_segments(
        self, tpcds_catalog, config, pool
    ):
        before = _shm_segments()
        build_corpus(tpcds_catalog, config, pool, noise_seed=5, jobs=2)
        assert active_plane_names() == ()
        assert _shm_segments() - before == set()

    def test_worker_kill_midbuild_leaves_no_segments(
        self, tpcds_catalog, config, pool
    ):
        before = _shm_segments()
        plan = FaultPlan(seed=3).on(
            "corpus.execute", mode="exit",
            calls=set(range(1, len(pool) + 1)),
            match={"query_id": pool[4].query_id},
        )
        with armed(plan):
            with pytest.raises(CorpusBuildError):
                build_corpus(
                    tpcds_catalog, config, pool, noise_seed=5, jobs=2
                )
        assert active_plane_names() == ()
        assert _shm_segments() - before == set()

    def test_injected_attach_failure_leaves_no_segments(
        self, tpcds_catalog, config, pool
    ):
        # artifact.read fires inside attach_arrays: every worker fails
        # to attach the plane, the build errors out, and the publisher's
        # finally still unlinks the segment.
        before = _shm_segments()
        plan = FaultPlan(seed=3).on("artifact.read", mode="raise", rate=1.0)
        with armed(plan):
            with pytest.raises(ReproError):
                build_corpus(
                    tpcds_catalog, config, pool, noise_seed=5, jobs=2
                )
        assert active_plane_names() == ()
        assert _shm_segments() - before == set()
