"""Chaos drills for the serving daemon.

The daemon exposes two registered fault sites — ``serve.handler`` (fires
before a request enters the batch queue) and ``serve.batch`` (fires
inside the collector, poisoning a whole micro-batch).  These tests arm
:class:`~repro.resilience.faults.FaultPlan` against a live daemon on a
real socket and assert the failure contract:

* injected faults surface as *structured* 503s with retry hints, never
  bare 500s or TCP resets, and the daemon keeps serving afterwards;
* repeated batch failures trip the serving circuit breaker, which is
  visible at ``/admin/status`` and converts later requests into fast
  ``breaker_open`` rejections;
* a daemon wrapping a :class:`FallbackChain` degrades *through* the
  chain — a dead kcca stage means responses say ``served_by:
  "regression"`` and still return 200;
* a seeded chaos load drill produces only structured outcomes
  (``dropped == 0``) even with faults firing mid-stream.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time

import pytest

from repro.api import QueryPerformancePredictor
from repro.errors import (
    ServeRejectedError,
    ServeUnavailableError,
    SupervisorError,
)
from repro.resilience.faults import (
    REGISTERED_SITES,
    FaultPlan,
    armed,
    site_registered,
)
from repro.serve import (
    PredictionDaemon,
    ServeClient,
    ServeConfig,
    Supervisor,
    SupervisorConfig,
)
from repro.serve.loadgen import run_load

from tests.test_serve import SQL_LIGHT, client_for, start_daemon


@pytest.fixture(scope="module")
def fallback_service(tpcds_catalog, config, mini_corpus):
    """A predictor serving through a FallbackChain (kcca → regression)."""
    service = QueryPerformancePredictor(
        tpcds_catalog, config=config, fallback=True
    )
    service.fit_corpus(mini_corpus)
    return service


class TestFaultSites:
    def test_serve_sites_are_registered(self):
        assert "serve.handler" in REGISTERED_SITES
        assert "serve.batch" in REGISTERED_SITES
        assert site_registered("serve.handler")
        assert site_registered("serve.batch")

    def test_plan_accepts_serve_sites(self):
        plan = FaultPlan(seed=1).on("serve.handler", calls={1})
        plan.on("serve.batch", rate=0.5)
        assert plan is not None


class TestHandlerFaults:
    def test_handler_fault_is_structured_503_then_recovers(
        self, serve_service
    ):
        daemon = start_daemon(serve_service)
        try:
            client = client_for(daemon)
            plan = FaultPlan(seed=7).on(
                "serve.handler", mode="raise", calls={1}
            )
            with armed(plan):
                with pytest.raises(ServeRejectedError) as excinfo:
                    client.forecast(SQL_LIGHT)
                assert excinfo.value.status == 503
                assert excinfo.value.payload["error"] == "injected_fault"
                assert excinfo.value.retry_after_s > 0
                # Call 2 is clean: the daemon survived the fault.
                payload = client.forecast(SQL_LIGHT)
            assert payload["model_version"] == daemon.model_version
            assert daemon.status()["inflight"] == 0
        finally:
            daemon.stop()

    def test_handler_fault_never_becomes_a_500(self, serve_service):
        daemon = start_daemon(serve_service)
        try:
            client = client_for(daemon)
            plan = FaultPlan(seed=7).on(
                "serve.handler", mode="raise", rate=1.0
            )
            with armed(plan):
                for _ in range(3):
                    status, payload = client.try_forecast(SQL_LIGHT)
                    assert status == 503
                    assert payload["error"] == "injected_fault"
        finally:
            daemon.stop()


class TestBatchFaults:
    def test_batch_fault_is_503_not_500_then_recovers(self, serve_service):
        daemon = start_daemon(serve_service)
        try:
            client = client_for(daemon)
            plan = FaultPlan(seed=3).on("serve.batch", mode="raise", calls={1})
            with armed(plan):
                status, payload = client.try_forecast(SQL_LIGHT)
                assert status == 503
                assert payload["error"] == "prediction_failed"
                assert "retry_after_s" in payload
                # The poisoned batch is gone; the next one predicts.
                recovered = client.forecast(SQL_LIGHT)
            assert recovered["forecast"]["metrics"]["elapsed_time"] > 0
        finally:
            daemon.stop()

    def test_repeated_batch_faults_open_the_breaker(self, serve_service):
        daemon = start_daemon(serve_service, breaker_failures=2)
        try:
            client = client_for(daemon)
            plan = FaultPlan(seed=3).on("serve.batch", mode="raise", rate=1.0)
            with armed(plan):
                for _ in range(2):
                    status, payload = client.try_forecast(SQL_LIGHT)
                    assert status == 503
                    assert payload["error"] == "prediction_failed"
                # Threshold reached: the breaker now rejects up front,
                # without paying for a doomed batch.
                batches_before = daemon.batcher.stats()["batches"]
                status, payload = client.try_forecast(SQL_LIGHT)
                assert status == 503
                assert payload["error"] == "breaker_open"
                assert payload["breaker"]["state"] == "open"
                assert daemon.batcher.stats()["batches"] == batches_before
            assert daemon.status()["breaker"]["state"] == "open"
        finally:
            daemon.stop()

    def test_breaker_state_visible_at_admin_status(self, serve_service):
        daemon = start_daemon(serve_service, breaker_failures=1)
        try:
            client = client_for(daemon)
            assert client.status()["breaker"]["state"] == "closed"
            plan = FaultPlan(seed=3).on("serve.batch", mode="raise", calls={1})
            with armed(plan):
                status, _ = client.try_forecast(SQL_LIGHT)
            assert status == 503
            breaker = client.status()["breaker"]
            assert breaker["state"] == "open"
            assert breaker["open_count"] == 1
            assert breaker["trip_reason"]
        finally:
            daemon.stop()


class TestFallbackDegradation:
    def test_dead_kcca_stage_degrades_to_regression(self, fallback_service):
        daemon = start_daemon(fallback_service)
        try:
            client = client_for(daemon)
            healthy = client.forecast(SQL_LIGHT)
            assert healthy["served_by"] == "kcca"
            plan = FaultPlan(seed=1).on(
                "fallback.kcca", mode="raise", rate=1.0
            )
            with armed(plan):
                degraded = client.forecast(SQL_LIGHT)
            # Still a 200 — the chain absorbed the failure.
            assert degraded["served_by"] == "regression"
            assert degraded["forecast"]["served_by"] == "regression"
            assert degraded["forecast"]["metrics"]["elapsed_time"] >= 0
        finally:
            daemon.stop()
            fallback_service.resilience_status()  # chain is still alive

    def test_fallback_breaker_reported_in_resilience_section(
        self, fallback_service
    ):
        daemon = start_daemon(fallback_service, breaker_failures=50)
        try:
            client = client_for(daemon)
            plan = FaultPlan(seed=1).on(
                "fallback.kcca", mode="raise", rate=1.0
            )
            with armed(plan):
                # FallbackChain defaults trip the kcca breaker after a
                # few consecutive stage failures.
                for _ in range(4):
                    client.forecast(SQL_LIGHT)
            resilience = client.status()["resilience"]
            assert resilience is not None
            assert resilience["last_served"] == "regression"
            assert "kcca" in resilience["stages"]
            # The serving breaker itself never tripped: every request
            # was answered 200 by the chain.
            assert client.status()["breaker"]["state"] == "closed"
        finally:
            daemon.stop()


class TestChaosLoadDrill:
    def test_faulty_load_is_all_structured_outcomes(
        self, serve_service, load_schedule
    ):
        """With batch faults firing mid-stream, every request still gets
        a structured answer: ok or rejected, never a dropped socket."""
        daemon = start_daemon(serve_service, max_batch=4, max_wait_ms=5.0)
        try:
            schedule = load_schedule(40, seed=11, n_clients=3)
            plan = FaultPlan(seed=5).on("serve.batch", mode="raise", rate=0.3)
            with armed(plan):
                report = run_load(daemon.address, schedule, max_workers=6)
        finally:
            daemon.stop()
        summary = report.summary()
        assert summary["total"] == 40
        assert summary["dropped"] == 0
        assert summary["ok"] + summary["rejected"] == 40
        # The plan really fired — some requests were rejected…
        assert summary["rejected"] > 0
        assert summary["statuses"].get("503", 0) == summary["rejected"]
        # …and the daemon still answers afterwards.
        assert daemon.status()["stopping"] is True


# ----------------------------------------------------------------------
# Self-healing: the supervisor's kill -9 / crash-loop / full-drill suite
# ----------------------------------------------------------------------


def supervised(service, tmp_path, *, serve_overrides=None, **policy):
    """A supervisor over a daemon factory, journaling into tmp_path."""
    serve_kwargs = dict(max_batch=4, max_wait_ms=5.0)
    serve_kwargs.update(serve_overrides or {})
    config = ServeConfig(**serve_kwargs)
    defaults = dict(
        backoff_initial_s=0.01,
        backoff_max_s=0.05,
        health_interval_s=0.02,
        crash_journal=tmp_path / "crash.jsonl",
    )
    defaults.update(policy)
    return Supervisor(
        lambda: PredictionDaemon(service=service, config=config),
        serve_config=config,
        config=SupervisorConfig(**defaults),
    )


def forecast_with_patience(client, sql, attempts=100, pause_s=0.05) -> dict:
    """Forecast through restart gaps: retry structured/transport refusals."""
    last = None
    for _ in range(attempts):
        try:
            return client.forecast(sql)
        except (ServeRejectedError, ServeUnavailableError) as error:
            last = error
            time.sleep(pause_s)
    raise AssertionError(f"daemon never recovered: {last!r}")


class TestSupervisor:
    def test_kill9_restart_reserves_bitwise_identical_forecast(
        self, serve_service, tmp_path
    ):
        """kill -9 on the child is a blip: the supervisor respawns it on
        the same socket and the replacement serves the *same bits*."""
        supervisor = supervised(serve_service, tmp_path)
        host, port = supervisor.start()
        try:
            client = ServeClient(host, port, timeout_s=10.0)
            before = client.forecast(SQL_LIGHT)["forecast"]
            victim = supervisor.child_pid
            os.kill(victim, signal.SIGKILL)
            deadline = time.monotonic() + 5.0
            while time.monotonic() < deadline:
                status = supervisor.status()
                if (
                    status["state"] == "running"
                    and status["child_pid"] not in (None, victim)
                ):
                    break
                time.sleep(0.02)
            status = supervisor.status()
            assert status["child_pid"] not in (None, victim), status
            assert supervisor.wait_healthy(5.0)
            after = forecast_with_patience(client, SQL_LIGHT)["forecast"]
            assert after == before  # bitwise-identical re-serve
            assert supervisor.restarts >= 1
        finally:
            supervisor.stop()
        events = [
            json.loads(line)
            for line in (tmp_path / "crash.jsonl").read_text().splitlines()
        ]
        kinds = [event["event"] for event in events]
        for expected in ("listen", "spawn", "exit", "restart", "stop"):
            assert expected in kinds, kinds
        death = next(e for e in events if e["event"] == "exit")
        assert death["signal"] == signal.SIGKILL
        offsets = [event["offset_s"] for event in events]
        assert offsets == sorted(offsets)  # a replayable timeline

    def test_crash_loop_gives_up_with_journal(self, tmp_path):
        """A deterministically crashing child must not be restarted
        forever: the supervisor gives up loudly and keeps answering
        structured 503s from the parent."""
        journal = tmp_path / "loop.jsonl"

        def bomb():
            raise RuntimeError("child is doomed")

        supervisor = Supervisor(
            bomb,
            serve_config=ServeConfig(),
            config=SupervisorConfig(
                max_restarts=2,
                restart_window_s=30.0,
                backoff_initial_s=0.01,
                backoff_max_s=0.02,
                health_interval_s=0.01,
                crash_journal=journal,
            ),
        )
        with pytest.raises(SupervisorError):
            supervisor.start(wait_healthy_s=10.0)
        try:
            assert supervisor.gave_up
            assert supervisor.status()["state"] == "gave_up"
            assert supervisor.restarts == 2
            # The address still answers — structurally, not with resets.
            host, port = supervisor.address
            client = ServeClient(host, port, timeout_s=2.0)
            status, payload = client.try_forecast(SQL_LIGHT)
            assert status == 503
            assert payload["error"] == "restarting"
            assert payload["retry_after_s"] > 0
        finally:
            supervisor.stop()
        events = [
            json.loads(line) for line in journal.read_text().splitlines()
        ]
        kinds = [event["event"] for event in events]
        assert kinds.count("exit") == 3  # two restarts, then the last straw
        assert "give_up" in kinds
        deaths = [e for e in events if e["event"] == "exit"]
        assert all(e["exit_code"] == 11 for e in deaths)
        give_up = next(e for e in events if e["event"] == "give_up")
        assert give_up["restarts_in_window"] == 3

    def test_supervisor_fault_site_is_registered(self):
        assert "serve.supervisor" in REGISTERED_SITES
        assert site_registered("serve.supervisor")


class TestSelfHealingDrill:
    def test_chaos_drill_is_fully_structured_with_tier_steps(
        self, serve_service, load_schedule, tmp_path
    ):
        """The acceptance drill: ``exit`` armed at serve.handler and
        ``hang`` at serve.batch, a 200-request seeded load against the
        supervised daemon.  Every request must end structured (200, 429,
        503 or 504 — never a dropped socket), over-deadline answers are
        504s, the supervisor must have healed at least one crash — and
        the degradation ladder must be seen stepping down *and* back up.
        """
        supervisor = supervised(
            serve_service,
            tmp_path,
            serve_overrides=dict(
                degrade=True,
                degrade_queue_depth=4,
                degrade_down_after_s=0.02,
                degrade_up_after_s=0.05,
            ),
            max_restarts=50,
            restart_window_s=60.0,
        )
        # Armed *before* start so every forked generation inherits the
        # plan: each child crashes at its 25th handler call and wedges
        # on its 2nd batch (the stall outlives the request budgets).
        plan = (
            FaultPlan(seed=13)
            .on("serve.handler", mode="exit", calls={25})
            .on("serve.batch", mode="hang", delay=0.02, calls={2})
        )
        with armed(plan):
            host, port = supervisor.start()
            try:
                report = run_load(
                    (host, port),
                    load_schedule(200, seed=29, n_clients=8),
                    max_workers=8,
                    deadline_ms=400.0,
                    retry_unavailable=5,
                    retry_backoff_s=0.05,
                )
            finally:
                supervisor.stop()
        summary = report.summary()
        assert summary["total"] == 200
        assert summary["dropped"] == 0, summary
        assert report.structured == 200
        assert set(summary["statuses"]) <= {"200", "429", "503", "504"}
        assert summary["ok"] > 0, summary
        # The hang wedged batches past their members' budgets: those
        # answers were 504s, never silently late 200s.
        assert summary["expired"] >= 1, summary
        assert summary["statuses"].get("504", 0) == summary["expired"]
        # The exit fault really killed children, and the supervisor
        # really healed them.
        assert supervisor.restarts >= 1
        events = [
            json.loads(line)
            for line in (tmp_path / "crash.jsonl").read_text().splitlines()
        ]
        crashes = [e for e in events if e["event"] == "exit"]
        assert any(e.get("exit_code") == 13 for e in crashes), crashes

        # Tier observation: the same pressure recipe as the load above,
        # against an unforked daemon so the ladder counters survive —
        # the ladder must step down under pressure and climb back.
        daemon = start_daemon(
            serve_service,
            max_batch=2,
            max_wait_ms=5.0,
            degrade=True,
            degrade_queue_depth=2,
            degrade_down_after_s=0.02,
            degrade_up_after_s=0.05,
        )
        try:
            client = client_for(daemon)

            def worker():
                for _ in range(8):
                    client.try_forecast(SQL_LIGHT)

            slow = FaultPlan(seed=9).on(
                "serve.batch", mode="delay", delay=0.03, rate=1.0
            )
            with armed(slow):
                threads = [
                    threading.Thread(target=worker) for _ in range(6)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
            assert daemon.status()["degrade"]["step_downs"] >= 1
            settle = time.monotonic() + 10.0
            while time.monotonic() < settle:
                client.forecast(SQL_LIGHT)
                if daemon.status()["degrade"]["tier"] == 0:
                    break
                time.sleep(0.03)
            degrade = daemon.status()["degrade"]
            assert degrade["tier"] == 0
            assert degrade["step_ups"] >= 1
        finally:
            daemon.stop()
