"""Chaos drills for the serving daemon.

The daemon exposes two registered fault sites — ``serve.handler`` (fires
before a request enters the batch queue) and ``serve.batch`` (fires
inside the collector, poisoning a whole micro-batch).  These tests arm
:class:`~repro.resilience.faults.FaultPlan` against a live daemon on a
real socket and assert the failure contract:

* injected faults surface as *structured* 503s with retry hints, never
  bare 500s or TCP resets, and the daemon keeps serving afterwards;
* repeated batch failures trip the serving circuit breaker, which is
  visible at ``/admin/status`` and converts later requests into fast
  ``breaker_open`` rejections;
* a daemon wrapping a :class:`FallbackChain` degrades *through* the
  chain — a dead kcca stage means responses say ``served_by:
  "regression"`` and still return 200;
* a seeded chaos load drill produces only structured outcomes
  (``dropped == 0``) even with faults firing mid-stream.
"""

from __future__ import annotations

import pytest

from repro.api import QueryPerformancePredictor
from repro.errors import ServeRejectedError
from repro.resilience.faults import (
    REGISTERED_SITES,
    FaultPlan,
    armed,
    site_registered,
)
from repro.serve.loadgen import run_load

from tests.test_serve import SQL_LIGHT, client_for, start_daemon


@pytest.fixture(scope="module")
def fallback_service(tpcds_catalog, config, mini_corpus):
    """A predictor serving through a FallbackChain (kcca → regression)."""
    service = QueryPerformancePredictor(
        tpcds_catalog, config=config, fallback=True
    )
    service.fit_corpus(mini_corpus)
    return service


class TestFaultSites:
    def test_serve_sites_are_registered(self):
        assert "serve.handler" in REGISTERED_SITES
        assert "serve.batch" in REGISTERED_SITES
        assert site_registered("serve.handler")
        assert site_registered("serve.batch")

    def test_plan_accepts_serve_sites(self):
        plan = FaultPlan(seed=1).on("serve.handler", calls={1})
        plan.on("serve.batch", rate=0.5)
        assert plan is not None


class TestHandlerFaults:
    def test_handler_fault_is_structured_503_then_recovers(
        self, serve_service
    ):
        daemon = start_daemon(serve_service)
        try:
            client = client_for(daemon)
            plan = FaultPlan(seed=7).on(
                "serve.handler", mode="raise", calls={1}
            )
            with armed(plan):
                with pytest.raises(ServeRejectedError) as excinfo:
                    client.forecast(SQL_LIGHT)
                assert excinfo.value.status == 503
                assert excinfo.value.payload["error"] == "injected_fault"
                assert excinfo.value.retry_after_s > 0
                # Call 2 is clean: the daemon survived the fault.
                payload = client.forecast(SQL_LIGHT)
            assert payload["model_version"] == daemon.model_version
            assert daemon.status()["inflight"] == 0
        finally:
            daemon.stop()

    def test_handler_fault_never_becomes_a_500(self, serve_service):
        daemon = start_daemon(serve_service)
        try:
            client = client_for(daemon)
            plan = FaultPlan(seed=7).on(
                "serve.handler", mode="raise", rate=1.0
            )
            with armed(plan):
                for _ in range(3):
                    status, payload = client.try_forecast(SQL_LIGHT)
                    assert status == 503
                    assert payload["error"] == "injected_fault"
        finally:
            daemon.stop()


class TestBatchFaults:
    def test_batch_fault_is_503_not_500_then_recovers(self, serve_service):
        daemon = start_daemon(serve_service)
        try:
            client = client_for(daemon)
            plan = FaultPlan(seed=3).on("serve.batch", mode="raise", calls={1})
            with armed(plan):
                status, payload = client.try_forecast(SQL_LIGHT)
                assert status == 503
                assert payload["error"] == "prediction_failed"
                assert "retry_after_s" in payload
                # The poisoned batch is gone; the next one predicts.
                recovered = client.forecast(SQL_LIGHT)
            assert recovered["forecast"]["metrics"]["elapsed_time"] > 0
        finally:
            daemon.stop()

    def test_repeated_batch_faults_open_the_breaker(self, serve_service):
        daemon = start_daemon(serve_service, breaker_failures=2)
        try:
            client = client_for(daemon)
            plan = FaultPlan(seed=3).on("serve.batch", mode="raise", rate=1.0)
            with armed(plan):
                for _ in range(2):
                    status, payload = client.try_forecast(SQL_LIGHT)
                    assert status == 503
                    assert payload["error"] == "prediction_failed"
                # Threshold reached: the breaker now rejects up front,
                # without paying for a doomed batch.
                batches_before = daemon.batcher.stats()["batches"]
                status, payload = client.try_forecast(SQL_LIGHT)
                assert status == 503
                assert payload["error"] == "breaker_open"
                assert payload["breaker"]["state"] == "open"
                assert daemon.batcher.stats()["batches"] == batches_before
            assert daemon.status()["breaker"]["state"] == "open"
        finally:
            daemon.stop()

    def test_breaker_state_visible_at_admin_status(self, serve_service):
        daemon = start_daemon(serve_service, breaker_failures=1)
        try:
            client = client_for(daemon)
            assert client.status()["breaker"]["state"] == "closed"
            plan = FaultPlan(seed=3).on("serve.batch", mode="raise", calls={1})
            with armed(plan):
                status, _ = client.try_forecast(SQL_LIGHT)
            assert status == 503
            breaker = client.status()["breaker"]
            assert breaker["state"] == "open"
            assert breaker["open_count"] == 1
            assert breaker["trip_reason"]
        finally:
            daemon.stop()


class TestFallbackDegradation:
    def test_dead_kcca_stage_degrades_to_regression(self, fallback_service):
        daemon = start_daemon(fallback_service)
        try:
            client = client_for(daemon)
            healthy = client.forecast(SQL_LIGHT)
            assert healthy["served_by"] == "kcca"
            plan = FaultPlan(seed=1).on(
                "fallback.kcca", mode="raise", rate=1.0
            )
            with armed(plan):
                degraded = client.forecast(SQL_LIGHT)
            # Still a 200 — the chain absorbed the failure.
            assert degraded["served_by"] == "regression"
            assert degraded["forecast"]["served_by"] == "regression"
            assert degraded["forecast"]["metrics"]["elapsed_time"] >= 0
        finally:
            daemon.stop()
            fallback_service.resilience_status()  # chain is still alive

    def test_fallback_breaker_reported_in_resilience_section(
        self, fallback_service
    ):
        daemon = start_daemon(fallback_service, breaker_failures=50)
        try:
            client = client_for(daemon)
            plan = FaultPlan(seed=1).on(
                "fallback.kcca", mode="raise", rate=1.0
            )
            with armed(plan):
                # FallbackChain defaults trip the kcca breaker after a
                # few consecutive stage failures.
                for _ in range(4):
                    client.forecast(SQL_LIGHT)
            resilience = client.status()["resilience"]
            assert resilience is not None
            assert resilience["last_served"] == "regression"
            assert "kcca" in resilience["stages"]
            # The serving breaker itself never tripped: every request
            # was answered 200 by the chain.
            assert client.status()["breaker"]["state"] == "closed"
        finally:
            daemon.stop()


class TestChaosLoadDrill:
    def test_faulty_load_is_all_structured_outcomes(
        self, serve_service, load_schedule
    ):
        """With batch faults firing mid-stream, every request still gets
        a structured answer: ok or rejected, never a dropped socket."""
        daemon = start_daemon(serve_service, max_batch=4, max_wait_ms=5.0)
        try:
            schedule = load_schedule(40, seed=11, n_clients=3)
            plan = FaultPlan(seed=5).on("serve.batch", mode="raise", rate=0.3)
            with armed(plan):
                report = run_load(daemon.address, schedule, max_workers=6)
        finally:
            daemon.stop()
        summary = report.summary()
        assert summary["total"] == 40
        assert summary["dropped"] == 0
        assert summary["ok"] + summary["rejected"] == 40
        # The plan really fired — some requests were rejected…
        assert summary["rejected"] > 0
        assert summary["statuses"].get("503", 0) == summary["rejected"]
        # …and the daemon still answers afterwards.
        assert daemon.status()["stopping"] is True
