"""Selectivity, cardinality and join-order estimation tests."""

import numpy as np
import pytest

from repro.optimizer.cardinality import (
    RelEstimate,
    group_by_estimate,
    join_estimate,
    scan_estimate,
    semi_join_estimate,
)
from repro.optimizer.joinorder import JoinEdge, order_joins
from repro.optimizer.selectivity import (
    column_fraction_below,
    predicate_selectivity,
)
from repro.sql.parser import parse
from repro.storage.catalog import Catalog
from repro.storage.table import Column, Schema, Table


def where(cond):
    return parse(f"SELECT * FROM t WHERE {cond}").where


@pytest.fixture(scope="module")
def stats():
    """Statistics for a table with known distributions."""
    catalog = Catalog()
    n = 10_000
    rng = np.random.default_rng(3)
    schema = Schema(
        [Column("id", "int"), Column("u", "float"), Column("c", "str")]
    )
    table = Table(
        "t",
        schema,
        {
            "id": np.arange(n),
            "u": rng.uniform(0, 100, n),
            "c": rng.choice(["a", "b", "c", "d"], size=n,
                            p=[0.7, 0.1, 0.1, 0.1]),
        },
    )
    catalog.register(table)
    return {"t": catalog.stats("t")}


class TestSelectivity:
    def test_equality_uses_ndv(self, stats):
        sel = predicate_selectivity(where("t.id = 5"), stats)
        assert sel == pytest.approx(1 / 10_000)

    def test_string_equality_uses_mcv(self, stats):
        sel = predicate_selectivity(where("t.c = 'a'"), stats)
        assert sel == pytest.approx(0.7, rel=0.05)

    def test_range_uses_histogram(self, stats):
        sel = predicate_selectivity(where("t.u < 25"), stats)
        assert sel == pytest.approx(0.25, abs=0.05)

    def test_greater_than(self, stats):
        sel = predicate_selectivity(where("t.u > 90"), stats)
        assert sel == pytest.approx(0.10, abs=0.05)

    def test_between(self, stats):
        sel = predicate_selectivity(where("t.u BETWEEN 40 AND 60"), stats)
        assert sel == pytest.approx(0.2, abs=0.05)

    def test_conjunction_multiplies(self, stats):
        single = predicate_selectivity(where("t.u < 50"), stats)
        double = predicate_selectivity(
            where("t.u < 50 AND t.c = 'b'"), stats
        )
        assert double < single

    def test_disjunction_adds(self, stats):
        either = predicate_selectivity(
            where("t.c = 'b' OR t.c = 'c'"), stats
        )
        assert either == pytest.approx(0.2, abs=0.03)

    def test_negation(self, stats):
        sel = predicate_selectivity(where("NOT t.c = 'a'"), stats)
        assert sel == pytest.approx(0.3, abs=0.05)

    def test_in_list_sums(self, stats):
        sel = predicate_selectivity(where("t.c IN ('b', 'c', 'd')"), stats)
        assert sel == pytest.approx(0.3, abs=0.05)

    def test_clamped_to_unit_interval(self, stats):
        sel = predicate_selectivity(
            where("t.c IN ('a', 'a', 'a', 'a')"), stats
        )
        assert 0 < sel <= 1.0

    def test_unknown_column_uses_default(self, stats):
        sel = predicate_selectivity(where("t.zzz = 1"), stats)
        assert 0 < sel < 0.1

    def test_flipped_comparison(self, stats):
        left = predicate_selectivity(where("t.u < 25"), stats)
        right = predicate_selectivity(where("25 > t.u"), stats)
        assert left == pytest.approx(right)


class TestColumnFraction:
    def test_below_min_is_zero(self, stats):
        col = stats["t"].column("u")
        assert column_fraction_below(col, -5.0) == 0.0

    def test_above_max_is_one(self, stats):
        col = stats["t"].column("u")
        assert column_fraction_below(col, 1e9) == 1.0

    def test_monotone(self, stats):
        col = stats["t"].column("u")
        values = [column_fraction_below(col, v) for v in (10, 30, 50, 70, 90)]
        assert values == sorted(values)


class TestCardinality:
    def make_rel(self, binding, rows, ndv):
        return RelEstimate(
            rows=rows,
            row_bytes=32.0,
            ndv={f"{binding}.k": ndv},
            bindings=frozenset({binding}),
        )

    def test_scan_estimate_scales_ndv(self, stats):
        est = scan_estimate("t", stats["t"], selectivity=0.01)
        assert est.rows == pytest.approx(100)
        assert est.ndv_of("t.id") <= 100

    def test_join_estimate_classic_formula(self):
        left = self.make_rel("a", 10_000, 100)
        right = self.make_rel("b", 5_000, 50)
        joined = join_estimate(left, right, [("a.k", "b.k")])
        assert joined.rows == pytest.approx(10_000 * 5_000 / 100)

    def test_cross_join(self):
        left = self.make_rel("a", 100, 10)
        right = self.make_rel("b", 200, 10)
        assert join_estimate(left, right, []).rows == 20_000

    def test_join_row_bytes_add(self):
        left = self.make_rel("a", 10, 5)
        right = self.make_rel("b", 10, 5)
        assert join_estimate(left, right, []).row_bytes == 64.0

    def test_semi_join_bounded_by_left(self):
        left = self.make_rel("a", 1000, 100)
        right = self.make_rel("b", 10, 10)
        semi = semi_join_estimate(left, right, [("a.k", "b.k")])
        assert semi.rows <= 1000
        assert semi.rows == pytest.approx(100)

    def test_group_by_caps_at_half_input(self):
        child = self.make_rel("a", 1000, 5000)
        grouped = group_by_estimate(child, ["a.k"], out_row_bytes=24.0)
        assert grouped.rows <= 500

    def test_ndv_defaults_when_unknown(self):
        rel = self.make_rel("a", 1000, 10)
        assert rel.ndv_of("a.unknown") == pytest.approx(100)


class TestJoinOrder:
    def rels(self, sizes):
        return {
            name: RelEstimate(
                rows=rows,
                row_bytes=16.0,
                ndv={f"{name}.k": min(rows, 100)},
                bindings=frozenset({name}),
            )
            for name, rows in sizes.items()
        }

    def test_single_relation(self):
        order = order_joins(self.rels({"a": 10}), [])
        assert order == ["a"]

    def test_all_relations_included_exactly_once(self):
        relations = self.rels({"a": 10, "b": 1000, "c": 100, "d": 10_000})
        edges = [
            JoinEdge("a", "b", "a.k", "b.k"),
            JoinEdge("b", "c", "b.k", "c.k"),
            JoinEdge("c", "d", "c.k", "d.k"),
        ]
        order = order_joins(relations, edges)
        assert sorted(order) == ["a", "b", "c", "d"]

    def test_prefers_connected_expansion(self):
        """A disconnected relation should come last (cross join penalty)."""
        relations = self.rels({"a": 100, "b": 100, "lonely": 50})
        edges = [JoinEdge("a", "b", "a.k", "b.k")]
        order = order_joins(relations, edges)
        assert order[-1] == "lonely"

    def test_greedy_path_on_large_join_sets(self):
        sizes = {f"t{i}": 100 * (i + 1) for i in range(10)}
        relations = self.rels(sizes)
        edges = [
            JoinEdge(f"t{i}", f"t{i+1}", f"t{i}.k", f"t{i+1}.k")
            for i in range(9)
        ]
        order = order_joins(relations, edges)
        assert sorted(order) == sorted(sizes)

    def test_edge_orientation(self):
        edge = JoinEdge("a", "b", "a.x", "b.y")
        assert edge.pair_for("a") == ("a.x", "b.y")
        assert edge.pair_for("b") == ("b.y", "a.x")
        with pytest.raises(Exception):
            edge.pair_for("c")


class TestColumnVsColumnSelectivity:
    """Histogram-based theta-join selectivity (col OP k*col)."""

    def test_responds_to_scale_factor(self, stats):
        selectivities = [
            predicate_selectivity(
                where(f"t.u > t.u * {k}"), {"t": stats["t"], "t2": stats["t"]}
            )
            for k in (0.5, 1.0, 2.0, 4.0)
        ]
        # Bigger multiplier -> fewer qualifying pairs.
        assert selectivities == sorted(selectivities, reverse=True)

    def test_symmetric_comparison_near_half(self, stats):
        sel = predicate_selectivity(where("t.u > t.u * 1.0"), stats)
        assert sel == pytest.approx(0.5, abs=0.1)

    def test_less_than_complements_greater(self, stats):
        greater = predicate_selectivity(where("t.u > t.u * 2"), stats)
        less_equal = predicate_selectivity(where("t.u <= t.u * 2"), stats)
        assert greater + less_equal == pytest.approx(1.0, abs=0.05)

    def test_not_equal_near_one(self, stats):
        sel = predicate_selectivity(where("t.u <> t.u * 1"), stats)
        assert sel > 0.9

    def test_literal_on_left_of_product(self, stats):
        right = predicate_selectivity(where("t.u > t.u * 3"), stats)
        left = predicate_selectivity(where("t.u > 3 * t.u"), stats)
        assert right == pytest.approx(left)

    def test_string_columns_fall_back(self, stats):
        # No histograms for strings: the default applies, no crash.
        sel = predicate_selectivity(where("t.c > t.c"), stats)
        assert 0 < sel <= 1
