"""Physical plan shape tests: the optimizer must emit sensible plans."""

import pytest

from repro.engine.plan import OperatorKind
from repro.errors import OptimizerError
from repro.optimizer.physical import rewrite_aggregates, split_conjuncts
from repro.sql.ast import ColumnRef
from repro.sql.parser import parse


def kinds_of(plan):
    return [node.kind for node in plan.walk()]


def find(plan, kind):
    return [node for node in plan.walk() if node.kind == kind]


class TestPlanShapes:
    def test_simple_scan_query(self, optimizer):
        plan = optimizer.optimize(
            "SELECT * FROM item i WHERE i.i_current_price > 10"
        ).plan
        assert plan.kind == OperatorKind.ROOT
        assert plan.child.kind == OperatorKind.EXCHANGE
        assert plan.child.exchange_kind == "collect"
        scans = find(plan, OperatorKind.FILE_SCAN)
        assert len(scans) == 1
        assert scans[0].predicate is not None

    def test_star_join_uses_hash_joins(self, optimizer):
        plan = optimizer.optimize(
            "SELECT i.i_category, count(*) AS c "
            "FROM store_sales ss, item i, date_dim d "
            "WHERE ss.ss_item_sk = i.i_item_sk "
            "AND ss.ss_sold_date_sk = d.d_date_sk "
            "GROUP BY i.i_category"
        ).plan
        assert len(find(plan, OperatorKind.HASH_JOIN)) == 2
        assert len(find(plan, OperatorKind.FILE_SCAN)) == 3
        assert len(find(plan, OperatorKind.HASH_GROUPBY)) == 1

    def test_theta_join_uses_nested_loop(self, optimizer):
        plan = optimizer.optimize(
            "SELECT i1.i_item_sk, i2.i_item_sk FROM item i1, item i2 "
            "WHERE i1.i_current_price > i2.i_current_price * 2"
        ).plan
        nested = find(plan, OperatorKind.NESTED_JOIN)
        assert len(nested) == 1
        assert nested[0].residual is not None

    def test_in_subquery_becomes_semi_join(self, optimizer):
        plan = optimizer.optimize(
            "SELECT count(*) AS c FROM store_sales ss WHERE ss.ss_item_sk IN "
            "(SELECT i.i_item_sk FROM item i WHERE i.i_category = 'Books')"
        ).plan
        assert len(find(plan, OperatorKind.SEMI_JOIN)) == 1

    def test_not_exists_becomes_anti_join(self, optimizer):
        plan = optimizer.optimize(
            "SELECT count(*) AS c FROM customer c WHERE NOT EXISTS "
            "(SELECT * FROM web_sales ws "
            "WHERE ws.ws_customer_sk = c.c_customer_sk)"
        ).plan
        assert len(find(plan, OperatorKind.ANTI_JOIN)) == 1

    def test_order_by_limit_becomes_top_n(self, optimizer):
        plan = optimizer.optimize(
            "SELECT ss.ss_item_sk, ss.ss_sales_price FROM store_sales ss "
            "ORDER BY ss.ss_sales_price DESC LIMIT 10"
        ).plan
        top = find(plan, OperatorKind.TOP_N)
        assert len(top) == 1
        assert top[0].limit == 10
        assert not find(plan, OperatorKind.SORT)

    def test_order_without_limit_becomes_sort(self, optimizer):
        plan = optimizer.optimize(
            "SELECT ss.ss_item_sk, ss.ss_sales_price FROM store_sales ss "
            "ORDER BY ss.ss_sales_price"
        ).plan
        assert len(find(plan, OperatorKind.SORT)) == 1

    def test_scalar_aggregate(self, optimizer):
        plan = optimizer.optimize(
            "SELECT count(*) AS c, sum(ss.ss_quantity) AS q "
            "FROM store_sales ss"
        ).plan
        agg = find(plan, OperatorKind.SCALAR_AGGREGATE)
        assert len(agg) == 1
        assert len(agg[0].aggregates) == 2

    def test_having_adds_filter(self, optimizer):
        plan = optimizer.optimize(
            "SELECT ss.ss_store_sk, count(*) AS c FROM store_sales ss "
            "GROUP BY ss.ss_store_sk HAVING count(*) > 100"
        ).plan
        assert len(find(plan, OperatorKind.FILTER)) == 1

    def test_distinct_operator(self, optimizer):
        plan = optimizer.optimize(
            "SELECT DISTINCT ss.ss_store_sk FROM store_sales ss"
        ).plan
        assert len(find(plan, OperatorKind.DISTINCT)) == 1

    def test_small_build_side_broadcast(self, optimizer):
        plan = optimizer.optimize(
            "SELECT count(*) AS c FROM store_sales ss, store s "
            "WHERE ss.ss_store_sk = s.s_store_sk"
        ).plan
        broadcasts = [
            node
            for node in find(plan, OperatorKind.EXCHANGE)
            if node.exchange_kind == "broadcast"
        ]
        assert broadcasts  # the tiny store dimension is broadcast

    def test_projection_pushdown_trims_scan(self, optimizer):
        plan = optimizer.optimize(
            "SELECT sum(ss.ss_sales_price) AS r FROM store_sales ss "
            "WHERE ss.ss_quantity > 5"
        ).plan
        scan = find(plan, OperatorKind.FILE_SCAN)[0]
        assert scan.scan_columns is not None
        assert set(scan.scan_columns) == {"ss_sales_price", "ss_quantity"}
        # The predicate-only column is dropped after filtering.
        assert set(scan.output_columns) == {"ss_sales_price"}

    def test_select_star_keeps_all_columns(self, optimizer):
        plan = optimizer.optimize("SELECT * FROM item i").plan
        scan = find(plan, OperatorKind.FILE_SCAN)[0]
        assert scan.scan_columns is None


class TestEstimates:
    def test_every_node_has_estimate(self, optimizer):
        plan = optimizer.optimize(
            "SELECT i.i_category, count(*) AS c "
            "FROM store_sales ss, item i "
            "WHERE ss.ss_item_sk = i.i_item_sk AND ss.ss_quantity > 30 "
            "GROUP BY i.i_category"
        ).plan
        for node in plan.walk():
            assert node.estimated_rows >= 1.0

    def test_selective_filter_reduces_estimate(self, optimizer, tpcds_catalog):
        wide = optimizer.optimize("SELECT * FROM store_sales ss").plan
        narrow = optimizer.optimize(
            "SELECT * FROM store_sales ss WHERE ss.ss_store_sk = 1"
        ).plan
        assert narrow.estimated_rows < wide.estimated_rows

    def test_cost_positive_and_monotone_with_joins(self, optimizer):
        single = optimizer.optimize("SELECT count(*) AS c FROM store_sales ss")
        joined = optimizer.optimize(
            "SELECT count(*) AS c FROM store_sales ss, item i "
            "WHERE ss.ss_item_sk = i.i_item_sk"
        )
        assert 0 < single.cost < joined.cost


class TestOptimizerErrors:
    def test_unknown_table(self, optimizer):
        with pytest.raises(OptimizerError):
            optimizer.optimize("SELECT * FROM nonexistent n")

    def test_unknown_column(self, optimizer):
        with pytest.raises(OptimizerError):
            optimizer.optimize("SELECT i.wrong_col FROM item i")

    def test_ambiguous_column(self, optimizer):
        with pytest.raises(OptimizerError):
            optimizer.optimize(
                "SELECT ss_item_sk FROM store_sales s1, store_sales s2"
            )

    def test_duplicate_binding(self, optimizer):
        with pytest.raises(OptimizerError):
            optimizer.optimize("SELECT * FROM item i, store_sales i")

    def test_order_by_unprojected_expression(self, optimizer):
        with pytest.raises(OptimizerError):
            optimizer.optimize(
                "SELECT i.i_item_sk FROM item i ORDER BY i.i_current_price * 2"
            )

    def test_uncorrelated_exists_rejected(self, optimizer):
        with pytest.raises(OptimizerError):
            optimizer.optimize(
                "SELECT count(*) AS c FROM item i WHERE EXISTS "
                "(SELECT * FROM store s WHERE s.s_state = 'CA')"
            )

    def test_group_by_expression_rejected(self, optimizer):
        with pytest.raises(OptimizerError):
            optimizer.optimize(
                "SELECT count(*) AS c FROM item i GROUP BY i.i_current_price * 2"
            )


class TestHelperRewrites:
    def test_split_conjuncts(self):
        where = parse(
            "SELECT * FROM t WHERE a = 1 AND b = 2 AND (c = 3 OR d = 4)"
        ).where
        parts = split_conjuncts(where)
        assert len(parts) == 3

    def test_rewrite_aggregates_dedupes(self):
        query = parse(
            "SELECT sum(a) AS s, sum(a) / count(*) AS ratio FROM t"
        )
        rewrite = rewrite_aggregates(query.select, None)
        # sum(a) computed once, count(*) once.
        assert len(rewrite.aggregates) == 2

    def test_rewrite_preserves_alias(self):
        query = parse("SELECT sum(a) AS total FROM t")
        rewrite = rewrite_aggregates(query.select, None)
        assert rewrite.aggregates[0].alias == "total"
        assert rewrite.select[0].expr == ColumnRef("total")

    def test_count_star_alias(self):
        query = parse("SELECT count(*) FROM t")
        rewrite = rewrite_aggregates(query.select, None)
        assert rewrite.aggregates[0].alias == "count_star"
        assert rewrite.aggregates[0].expr is None

    def test_having_aggregate_extracted(self):
        query = parse(
            "SELECT a FROM t GROUP BY a HAVING max(b) > 5"
        )
        rewrite = rewrite_aggregates(query.select, query.having)
        assert any(spec.func == "max" for spec in rewrite.aggregates)
