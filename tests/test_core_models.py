"""Tests for KCCA, CCA, PCA, K-means and the regression baseline."""

import numpy as np
import pytest

from repro.core.cca import CCA
from repro.core.kcca import KCCA, center_cross_kernel, center_kernel
from repro.core.kernels import gaussian_kernel_matrix
from repro.core.kmeans import KMeans, cluster_agreement
from repro.core.pca import PCA
from repro.core.regression import LinearRegression, MultiMetricRegression
from repro.errors import ModelError, NotFittedError


class TestKernelCentering:
    def test_centered_rows_and_columns_sum_to_zero(self):
        data = np.random.default_rng(0).normal(size=(10, 3))
        kernel = gaussian_kernel_matrix(data, tau=1.0)
        centered = center_kernel(kernel)
        assert np.allclose(centered.sum(axis=0), 0.0, atol=1e-10)
        assert np.allclose(centered.sum(axis=1), 0.0, atol=1e-10)

    def test_cross_centering_consistent_with_square(self):
        """Centring training rows via the cross formula must equal the
        rows of the double-centred training kernel."""
        data = np.random.default_rng(0).normal(size=(8, 3))
        kernel = gaussian_kernel_matrix(data, tau=1.0)
        square = center_kernel(kernel)
        cross = center_cross_kernel(kernel, kernel)
        assert np.allclose(square, cross, atol=1e-10)


class TestKCCA:
    def make_correlated(self, n=120, seed=0):
        rng = np.random.default_rng(seed)
        latent = rng.uniform(-1, 1, size=n)
        x = np.column_stack([latent, rng.normal(0, 0.05, n)])
        y = np.column_stack([np.sin(latent), rng.normal(0, 0.05, n)])
        return x, y

    def test_finds_nonlinear_correlation(self):
        x, y = self.make_correlated()
        kx = gaussian_kernel_matrix(x, tau=1.0)
        ky = gaussian_kernel_matrix(y, tau=1.0)
        model = KCCA(n_components=2, regularization=1e-3).fit(kx, ky)
        assert model.correlations[0] > 0.9

    def test_independent_data_low_correlation(self):
        rng = np.random.default_rng(1)
        x = rng.normal(size=(120, 2))
        y = rng.normal(size=(120, 2))
        kx = gaussian_kernel_matrix(x, tau=2.0)
        ky = gaussian_kernel_matrix(y, tau=2.0)
        model = KCCA(n_components=1, regularization=1e-2).fit(kx, ky)
        assert model.correlations[0] < 0.6

    def test_projection_shapes(self):
        x, y = self.make_correlated(n=50)
        kx = gaussian_kernel_matrix(x, tau=1.0)
        ky = gaussian_kernel_matrix(y, tau=1.0)
        model = KCCA(n_components=4).fit(kx, ky)
        assert model.x_projection.shape == (50, 4)
        assert model.y_projection.shape == (50, 4)

    def test_correlations_descending(self):
        x, y = self.make_correlated()
        kx = gaussian_kernel_matrix(x, tau=1.0)
        ky = gaussian_kernel_matrix(y, tau=1.0)
        model = KCCA(n_components=5).fit(kx, ky)
        assert list(model.correlations) == sorted(model.correlations)[::-1]

    def test_correlated_pairs_are_projected_nearby(self):
        """Figure 6's point: the same query lands in similar places in the
        two projections (after per-component sign/scale alignment)."""
        x, y = self.make_correlated()
        kx = gaussian_kernel_matrix(x, tau=1.0)
        ky = gaussian_kernel_matrix(y, tau=1.0)
        model = KCCA(n_components=1, regularization=1e-3).fit(kx, ky)
        px = model.x_projection[:, 0]
        py = model.y_projection[:, 0]
        correlation = abs(np.corrcoef(px, py)[0, 1])
        assert correlation > 0.9

    def test_project_x_matches_training_projection(self):
        x, y = self.make_correlated(n=40)
        kx = gaussian_kernel_matrix(x, tau=1.0)
        ky = gaussian_kernel_matrix(y, tau=1.0)
        model = KCCA(n_components=2).fit(kx, ky)
        projected = model.project_x(kx)
        assert np.allclose(projected, model.x_projection, atol=1e-8)

    def test_mismatched_kernels_rejected(self):
        with pytest.raises(ModelError):
            KCCA().fit(np.eye(5), np.eye(6))

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            _ = KCCA().x_projection

    def test_invalid_params(self):
        with pytest.raises(ModelError):
            KCCA(n_components=0)
        with pytest.raises(ModelError):
            KCCA(regularization=0.0)


class TestCCA:
    def test_recovers_linear_correlation(self):
        rng = np.random.default_rng(0)
        latent = rng.normal(size=200)
        x = np.column_stack([latent + rng.normal(0, 0.1, 200),
                             rng.normal(size=200)])
        y = np.column_stack([2 * latent + rng.normal(0, 0.1, 200),
                             rng.normal(size=200)])
        model = CCA(n_components=2).fit(x, y)
        assert model.correlations[0] > 0.95

    def test_transforms_are_correlated(self):
        rng = np.random.default_rng(0)
        latent = rng.normal(size=100)
        x = latent[:, None] + rng.normal(0, 0.1, (100, 2))
        y = latent[:, None] + rng.normal(0, 0.1, (100, 3))
        model = CCA(n_components=1).fit(x, y)
        tx = model.transform_x(x)[:, 0]
        ty = model.transform_y(y)[:, 0]
        assert abs(np.corrcoef(tx, ty)[0, 1]) > 0.9

    def test_shape_validation(self):
        with pytest.raises(ModelError):
            CCA().fit(np.ones((5, 2)), np.ones((6, 2)))

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            CCA().transform_x(np.ones((2, 2)))


class TestPCA:
    def test_first_component_is_max_variance_direction(self):
        rng = np.random.default_rng(0)
        data = np.column_stack(
            [rng.normal(0, 10, 300), rng.normal(0, 1, 300)]
        )
        model = PCA(n_components=2).fit(data)
        # First component should be (approximately) the x axis.
        assert abs(model.components[0][0]) > 0.99

    def test_explained_variance_ratio_sums_to_one(self):
        data = np.random.default_rng(0).normal(size=(100, 4))
        model = PCA(n_components=4).fit(data)
        assert model.explained_variance_ratio().sum() == pytest.approx(1.0)

    def test_transform_centers(self):
        data = np.random.default_rng(0).normal(size=(50, 3)) + 100
        transformed = PCA(n_components=3).fit_transform(data)
        assert np.allclose(transformed.mean(axis=0), 0.0, atol=1e-9)

    def test_reconstruction_with_all_components(self):
        data = np.random.default_rng(0).normal(size=(30, 3))
        model = PCA(n_components=3).fit(data)
        transformed = model.transform(data)
        reconstructed = transformed @ model.components + model.mean
        assert np.allclose(reconstructed, data, atol=1e-9)

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            PCA().transform(np.ones((2, 2)))


class TestKMeans:
    def blobs(self, seed=0):
        rng = np.random.default_rng(seed)
        return np.vstack(
            [
                rng.normal([0, 0], 0.3, (40, 2)),
                rng.normal([5, 5], 0.3, (40, 2)),
                rng.normal([0, 5], 0.3, (40, 2)),
            ]
        )

    def test_recovers_blobs(self):
        data = self.blobs()
        model = KMeans(n_clusters=3, seed=1).fit(data)
        labels = model.labels
        # Points within each generated blob share one label.
        for start in (0, 40, 80):
            block = labels[start : start + 40]
            assert (block == block[0]).mean() > 0.95

    def test_predict_consistent_with_fit(self):
        data = self.blobs()
        model = KMeans(n_clusters=3, seed=1).fit(data)
        assert np.array_equal(model.predict(data), model.labels)

    def test_inertia_decreases_with_k(self):
        data = self.blobs()
        inertia = [
            KMeans(n_clusters=k, seed=1).fit(data).inertia for k in (1, 3)
        ]
        assert inertia[1] < inertia[0]

    def test_too_few_points(self):
        with pytest.raises(ModelError):
            KMeans(n_clusters=5).fit(np.ones((3, 2)))

    def test_cluster_agreement_identical(self):
        labels = np.array([0, 0, 1, 1, 2])
        assert cluster_agreement(labels, labels) == 1.0

    def test_cluster_agreement_disjoint(self):
        a = np.array([0, 0, 0, 0])
        b = np.array([0, 1, 2, 3])
        assert cluster_agreement(a, b) == 0.0

    def test_paper_motivation_feature_vs_performance_clusters(self):
        """Section V-B: clustering X and clustering Y produce different
        partitions when the X->Y map is non-monotone in cluster space."""
        rng = np.random.default_rng(3)
        x = rng.uniform(0, 1, (150, 2))
        y = np.column_stack([np.sin(8 * x[:, 0]), np.cos(8 * x[:, 1])])
        labels_x = KMeans(n_clusters=3, seed=0).fit(x).labels
        labels_y = KMeans(n_clusters=3, seed=0).fit(y).labels
        assert cluster_agreement(labels_x, labels_y) < 0.9


class TestLinearRegression:
    def test_recovers_exact_linear_model(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(100, 3))
        y = 2.0 + x @ np.array([1.0, -2.0, 0.5])
        model = LinearRegression().fit(x, y)
        assert model.intercept == pytest.approx(2.0, abs=1e-8)
        assert np.allclose(model.coefficients, [1.0, -2.0, 0.5], atol=1e-8)

    def test_predict(self):
        x = np.array([[1.0], [2.0], [3.0]])
        y = np.array([2.0, 4.0, 6.0])
        model = LinearRegression().fit(x, y)
        assert model.predict(np.array([[4.0]]))[0] == pytest.approx(8.0)

    def test_zeroed_features_detected(self):
        rng = np.random.default_rng(0)
        x = np.column_stack([rng.normal(size=50), np.zeros(50)])
        y = x[:, 0] * 3
        model = LinearRegression().fit(x, y)
        assert 1 in model.zeroed_features()

    def test_can_predict_negative_values(self):
        """The regression pathology the paper highlights: nothing stops
        negative time predictions."""
        x = np.array([[1.0], [2.0], [3.0]])
        y = np.array([1.0, 2.0, 3.0])
        model = LinearRegression().fit(x, y)
        assert model.predict(np.array([[-5.0]]))[0] < 0

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            LinearRegression().predict(np.ones((2, 2)))


class TestMultiMetricRegression:
    def test_fits_each_metric(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=(80, 4))
        y = np.column_stack([x @ rng.normal(size=4) for _ in range(3)])
        model = MultiMetricRegression(("a", "b", "c")).fit(x, y)
        predicted = model.predict(x)
        assert predicted.shape == (80, 3)
        assert np.allclose(predicted, y, atol=1e-6)

    def test_negative_counts(self):
        x = np.array([[1.0], [2.0], [3.0]])
        y = np.column_stack([x[:, 0], -x[:, 0]])
        model = MultiMetricRegression(("up", "down")).fit(x, y)
        counts = model.negative_prediction_counts(x)
        assert counts["up"] == 0
        assert counts["down"] == 3

    def test_column_mismatch(self):
        with pytest.raises(ModelError):
            MultiMetricRegression(("a",)).fit(np.ones((5, 2)), np.ones((5, 3)))

    def test_unknown_metric(self):
        model = MultiMetricRegression(("a",)).fit(
            np.ones((5, 2)), np.ones((5, 1))
        )
        with pytest.raises(ModelError):
            model.model_for("b")

    def test_different_metrics_zero_different_covariates(self):
        """The paper's observation that per-metric models discard
        different features, defeating a unified model."""
        rng = np.random.default_rng(1)
        x = rng.normal(size=(100, 2))
        y = np.column_stack([x[:, 0], x[:, 1]])
        model = MultiMetricRegression(("m1", "m2")).fit(x, y)
        z1 = set(model.model_for("m1").zeroed_features(tolerance=1e-6))
        z2 = set(model.model_for("m2").zeroed_features(tolerance=1e-6))
        assert z1 == {1} and z2 == {0}
