"""Pipeline persistence, batch prediction and Model-protocol tests."""

import inspect
import json
import os
import re
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

import repro
import repro.cli
import repro.experiments.harness
from repro.api import QueryPerformancePredictor
from repro.core.base import Model
from repro.core.online import OnlinePredictor
from repro.core.predictor import KCCAPredictor
from repro.core.regression import MultiMetricRegression
from repro.core.two_step import TwoStepPredictor
from repro.engine.metrics import METRIC_NAMES
from repro.engine.system import production_32node
from repro.errors import ModelError
from repro.experiments.harness import evaluate_pipeline, fit_pipeline
from repro.pipeline import PredictionPipeline
from repro.workloads.generator import generate_pool

MODEL_FACTORIES = {
    "kcca": lambda: KCCAPredictor(),
    "two_step": lambda: TwoStepPredictor(),
    "online": lambda: OnlinePredictor(min_fit_size=10),
    "regression": lambda: MultiMetricRegression(METRIC_NAMES),
}


@pytest.fixture(scope="module")
def service(tpcds_catalog, config, mini_corpus):
    """An api-level service trained on the shared mini corpus."""
    svc = QueryPerformancePredictor(tpcds_catalog, config=config)
    svc.fit_corpus(mini_corpus)
    return svc


@pytest.fixture(scope="module")
def batch_sqls():
    return [q.sql for q in generate_pool(100, seed=77, problem_fraction=0.2)]


def _tamper_manifest(path: Path, mutate) -> None:
    """Rewrite the JSON manifest inside a saved .npz artifact."""
    with np.load(path) as archive:
        data = {key: archive[key] for key in archive.files}
    manifest = json.loads(bytes(data["__manifest__"]).decode("utf-8"))
    mutate(manifest)
    data["__manifest__"] = np.frombuffer(
        json.dumps(manifest).encode("utf-8"), dtype=np.uint8
    )
    with open(path, "wb") as handle:
        np.savez(handle, **data)


class TestModelProtocol:
    @pytest.mark.parametrize("name", sorted(MODEL_FACTORIES))
    def test_conforms_and_round_trips(self, name, mini_corpus, tmp_path):
        model = MODEL_FACTORIES[name]()
        assert isinstance(model, Model)
        features = mini_corpus.feature_matrix()
        performance = mini_corpus.performance_matrix()
        model.fit(features, performance)
        expected = model.predict(features[:7])

        path = tmp_path / f"{name}.npz"
        model.save(path)
        loaded = type(model).load(path)
        restored = loaded.predict(features[:7])
        np.testing.assert_array_equal(restored, expected)

    @pytest.mark.parametrize("name", sorted(MODEL_FACTORIES))
    def test_state_dict_shape(self, name, mini_corpus):
        model = MODEL_FACTORIES[name]()
        model.fit(
            mini_corpus.feature_matrix(), mini_corpus.performance_matrix()
        )
        state = model.state_dict()
        assert set(state) >= {"config", "fitted"}


class TestPipelineRoundTrip:
    @pytest.mark.parametrize("model_name", ["kcca", "two_step"])
    def test_save_load_identical_predictions(
        self, model_name, mini_corpus, tpcds_catalog, config, tmp_path
    ):
        pipeline = fit_pipeline(
            mini_corpus, model=MODEL_FACTORIES[model_name]()
        )
        features = mini_corpus.feature_matrix()[:11]
        expected = pipeline.predict_many(features)
        expected_scores = pipeline.score_many(features)

        path = tmp_path / "pipeline.npz"
        pipeline.save(path, catalog=tpcds_catalog, config=config)
        loaded = PredictionPipeline.load(
            path, catalog=tpcds_catalog, config=config
        )
        np.testing.assert_array_equal(loaded.predict_many(features), expected)
        for before, after in zip(expected_scores, loaded.score_many(features)):
            np.testing.assert_array_equal(after.prediction, before.prediction)
            assert after.confidence.zscore == before.confidence.zscore
            assert after.confidence.anomalous == before.confidence.anomalous

    def test_calibrator_round_trips(self, mini_corpus, tmp_path):
        pipeline = fit_pipeline(mini_corpus)
        assert pipeline.calibrator is not None
        costs = mini_corpus.optimizer_costs()[:5]
        expected = pipeline.calibrated_seconds(costs)
        path = tmp_path / "pipeline.npz"
        pipeline.save(path)
        loaded = PredictionPipeline.load(path)
        np.testing.assert_array_equal(
            loaded.calibrated_seconds(costs), expected
        )

    def test_catalog_fingerprint_mismatch_refused(
        self, mini_corpus, tpcds_catalog, config, tmp_path
    ):
        from repro.workloads.tpcds import build_tpcds_catalog

        pipeline = fit_pipeline(mini_corpus)
        path = tmp_path / "pipeline.npz"
        pipeline.save(path, catalog=tpcds_catalog, config=config)
        other = build_tpcds_catalog(scale_factor=0.05, seed=5)
        with pytest.raises(ModelError, match="catalog"):
            PredictionPipeline.load(path, catalog=other)

    def test_system_fingerprint_mismatch_refused(
        self, mini_corpus, tpcds_catalog, config, tmp_path
    ):
        pipeline = fit_pipeline(mini_corpus)
        path = tmp_path / "pipeline.npz"
        pipeline.save(path, catalog=tpcds_catalog, config=config)
        with pytest.raises(ModelError, match="system"):
            PredictionPipeline.load(path, config=production_32node(8))

    def test_unknown_artifact_schema_version_refused(
        self, mini_corpus, tmp_path
    ):
        pipeline = fit_pipeline(mini_corpus)
        path = tmp_path / "pipeline.npz"
        pipeline.save(path)

        def bump(manifest):
            manifest["artifact"]["schema_version"] = 999

        _tamper_manifest(path, bump)
        with pytest.raises(ModelError, match="schema version"):
            PredictionPipeline.load(path)

    def test_unknown_model_schema_version_refused(self, mini_corpus, tmp_path):
        pipeline = fit_pipeline(mini_corpus)
        path = tmp_path / "pipeline.npz"
        pipeline.save(path)

        def bump(manifest):
            manifest["schema_version"] = 999

        _tamper_manifest(path, bump)
        with pytest.raises(ModelError, match="schema version"):
            PredictionPipeline.load(path)

    def test_evaluate_pipeline_reports_all_metrics(self, mini_corpus):
        pipeline = fit_pipeline(mini_corpus)
        risk = evaluate_pipeline(pipeline, mini_corpus.subset(range(20)))
        assert set(risk) == set(METRIC_NAMES)


class TestCorruptArtifacts:
    """Damaged .npz artifacts must surface as ModelError with the path,
    never as a raw zipfile/zlib/numpy exception."""

    @pytest.fixture(scope="class")
    def artifact_bytes(self, mini_corpus, tmp_path_factory):
        pipeline = fit_pipeline(mini_corpus)
        path = tmp_path_factory.mktemp("artifacts") / "pipeline.npz"
        pipeline.save(path)
        return path.read_bytes()

    @pytest.mark.parametrize("keep_fraction", [0.25, 0.5, 0.9, 0.98])
    def test_truncated_artifact(self, artifact_bytes, tmp_path, keep_fraction):
        path = tmp_path / "truncated.npz"
        path.write_bytes(
            artifact_bytes[: int(len(artifact_bytes) * keep_fraction)]
        )
        with pytest.raises(ModelError, match=re.escape(str(path))):
            PredictionPipeline.load(path)

    @pytest.mark.parametrize("position_fraction", [0.3, 0.5, 0.7])
    def test_bitflipped_artifact(
        self, artifact_bytes, tmp_path, position_fraction
    ):
        # Mid-file bit flips corrupt a member's *compressed payload*
        # (zlib.error territory) rather than the zip directory
        # (BadZipFile territory) — the leak this regression test pins.
        corrupted = bytearray(artifact_bytes)
        position = int(len(corrupted) * position_fraction)
        for offset in range(64):
            corrupted[position + offset] ^= 0xFF
        path = tmp_path / "bitflipped.npz"
        path.write_bytes(bytes(corrupted))
        with pytest.raises(ModelError, match=re.escape(str(path))):
            PredictionPipeline.load(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.npz"
        path.write_bytes(b"")
        with pytest.raises(ModelError, match=re.escape(str(path))):
            PredictionPipeline.load(path)

    def test_non_zip_garbage(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive at all" * 10)
        with pytest.raises(ModelError, match=re.escape(str(path))):
            PredictionPipeline.load(path)


class TestBatchPrediction:
    def test_predict_many_matches_per_query(self, service, batch_sqls):
        sqls = batch_sqls[:20]
        batched = service.predict_many(sqls)
        singles = [service.predict(sql) for sql in sqls]
        assert batched == singles

    def test_forecast_many_matches_forecast(self, service, batch_sqls):
        sqls = batch_sqls[:10]
        batched = service.forecast_many(sqls)
        for sql, fc in zip(sqls, batched):
            single = service.forecast(sql)
            assert fc.metrics == single.metrics
            assert fc.category == single.category
            assert fc.optimizer_cost == single.optimizer_cost
            assert fc.confidence.anomalous == single.confidence.anomalous
            assert fc.confidence.zscore == pytest.approx(
                single.confidence.zscore
            )

    def test_one_kernel_cross_for_batch(
        self, service, batch_sqls, monkeypatch
    ):
        import repro.core.predictor as predictor_module

        real = predictor_module.gaussian_kernel_cross
        calls = []

        def counting(*args, **kwargs):
            calls.append(args[0].shape)
            return real(*args, **kwargs)

        monkeypatch.setattr(
            predictor_module, "gaussian_kernel_cross", counting
        )
        forecasts = service.forecast_many(batch_sqls)
        assert len(forecasts) == len(batch_sqls)
        assert len(calls) == 1  # one cross-kernel evaluation for the model

    def test_two_step_batch_one_cross_per_model(
        self, tpcds_catalog, config, mini_corpus, batch_sqls, monkeypatch
    ):
        import repro.core.predictor as predictor_module

        svc = QueryPerformancePredictor(
            tpcds_catalog, config=config, two_step=True
        )
        svc.fit_corpus(mini_corpus)
        n_specialists = len(svc.pipeline.model.trained_categories)

        real = predictor_module.gaussian_kernel_cross
        calls = []

        def counting(*args, **kwargs):
            calls.append(args[0].shape)
            return real(*args, **kwargs)

        monkeypatch.setattr(
            predictor_module, "gaussian_kernel_cross", counting
        )
        svc.forecast_many(batch_sqls[:30])
        # Router once, plus at most one cross per specialist model.
        assert len(calls) <= 1 + n_specialists


class TestApiPersistence:
    def test_save_load_with_explicit_environment(
        self, service, batch_sqls, tpcds_catalog, config, tmp_path
    ):
        path = tmp_path / "service.npz"
        service.save(path)
        loaded = QueryPerformancePredictor.load(
            path, catalog=tpcds_catalog, config=config
        )
        sqls = batch_sqls[:5]
        assert loaded.predict_many(sqls) == service.predict_many(sqls)

    def test_load_without_catalog_requires_recipe(
        self, service, tmp_path
    ):
        path = tmp_path / "service.npz"
        service.save(path)  # fit_corpus-trained: no catalog recipe stored
        with pytest.raises(ModelError, match="catalog"):
            QueryPerformancePredictor.load(path)

    def test_fresh_process_round_trip(self, tmp_path):
        svc = QueryPerformancePredictor.train_on_tpcds(
            n_queries=40, scale_factor=0.05, seed=11
        )
        path = tmp_path / "model.npz"
        svc.save(path)
        sql = "SELECT count(*) AS c FROM store_sales ss WHERE ss.ss_quantity > 30"
        expected = svc.predict(sql)

        code = (
            "from repro.api import QueryPerformancePredictor\n"
            f"svc = QueryPerformancePredictor.load({str(path)!r})\n"
            f"print(repr(svc.predict({sql!r})))\n"
        )
        env = dict(os.environ)
        src_dir = str(Path(repro.__file__).resolve().parents[1])
        env["PYTHONPATH"] = (
            src_dir + os.pathsep + env["PYTHONPATH"]
            if env.get("PYTHONPATH")
            else src_dir
        )
        result = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True,
            text=True,
            env=env,
            check=True,
        )
        assert result.stdout.strip() == repr(expected)


class TestNoPrivateReachThrough:
    @pytest.mark.parametrize(
        "module", [repro.cli, repro.experiments.harness], ids=lambda m: m.__name__
    )
    def test_no_private_attribute_access(self, module):
        source = inspect.getsource(module)
        assert not re.search(r"\._[a-zA-Z]", source)
