"""Tests for the paper's extension features: feature importance
(Sec. VII-C.2), online retraining and cost calibration (Sec. VIII)."""

import numpy as np
import pytest

from repro.core.calibration import CostCalibrator
from repro.core.importance import feature_contributions
from repro.core.online import OnlinePredictor
from repro.core.predictor import KCCAPredictor
from repro.errors import ModelError, NotFittedError


def make_data(n=200, seed=0, scale=1.0):
    rng = np.random.default_rng(seed)
    x = rng.uniform(0, 1, (n, 5))
    base = scale * (np.exp(2 * x[:, 0]) + 4 * x[:, 1])
    y = np.column_stack([base, base * 10, base * 0.5,
                         base + 1, base * 3, base * 7])
    return x, y


class TestFeatureImportance:
    def test_informative_feature_ranks_high(self):
        """Features driving performance should top the contribution list;
        a pure-noise feature should not."""
        rng = np.random.default_rng(1)
        n = 200
        driver = rng.uniform(0, 1, n)
        noise = rng.uniform(0, 1, n)
        x = np.column_stack([driver, noise])
        base = np.exp(3 * driver) + 1
        y = np.column_stack([base] * 6)
        model = KCCAPredictor(log_features=False).fit(x, y)
        contributions = feature_contributions(
            model, x[:40], x, ["driver", "noise"]
        )
        by_name = {c.name: c for c in contributions}
        assert by_name["driver"].similarity > by_name["noise"].similarity

    def test_sorted_by_score(self):
        x, y = make_data()
        model = KCCAPredictor(log_features=False).fit(x, y)
        names = [f"f{i}" for i in range(x.shape[1])]
        contributions = feature_contributions(model, x[:20], x, names)
        scores = [c.score for c in contributions]
        assert scores == sorted(scores, reverse=True)

    def test_inactive_feature_zero_fraction(self):
        x, y = make_data()
        x = np.hstack([x, np.zeros((len(x), 1))])
        model = KCCAPredictor(log_features=False).fit(x, y)
        names = [f"f{i}" for i in range(x.shape[1])]
        contributions = feature_contributions(model, x[:10], x, names)
        dead = next(c for c in contributions if c.name == "f5")
        assert dead.active_fraction == 0.0
        assert dead.score == 0.0

    def test_name_length_validated(self):
        x, y = make_data(n=50)
        model = KCCAPredictor(log_features=False).fit(x, y)
        with pytest.raises(ModelError):
            feature_contributions(model, x[:5], x, ["only-one"])


class TestOnlinePredictor:
    def test_not_ready_before_min_fit(self):
        online = OnlinePredictor(min_fit_size=30, log_features=False)
        x, y = make_data(n=10)
        for i in range(10):
            online.observe(x[i], y[i])
        assert not online.is_ready
        with pytest.raises(NotFittedError):
            online.predict(x[:1])

    def test_becomes_ready_and_predicts(self):
        online = OnlinePredictor(
            min_fit_size=40, refit_interval=10, log_features=False
        )
        x, y = make_data(n=80)
        for i in range(80):
            online.observe(x[i], y[i])
        assert online.is_ready
        prediction = online.predict(x[:3])
        assert prediction.shape == (3, 6)

    def test_window_bounds_memory(self):
        online = OnlinePredictor(
            window_size=50, min_fit_size=20, log_features=False
        )
        x, y = make_data(n=120)
        for i in range(120):
            online.observe(x[i], y[i])
        assert len(online) == 50

    def test_refit_interval_amortises(self):
        online = OnlinePredictor(
            min_fit_size=20, refit_interval=20, log_features=False
        )
        x, y = make_data(n=100)
        for i in range(100):
            online.observe(x[i], y[i])
        assert online.refit_count <= 6

    def test_adapts_to_drift(self):
        """After a regime change (system 3x slower), the sliding window
        model tracks the new regime; a frozen model keeps predicting the
        old one."""
        x_old, y_old = make_data(n=150, seed=1, scale=1.0)
        x_new, y_new = make_data(n=150, seed=2, scale=3.0)

        frozen = KCCAPredictor(log_features=False).fit(x_old, y_old)
        online = OnlinePredictor(
            window_size=150, min_fit_size=30, refit_interval=25,
            log_features=False,
        )
        for i in range(150):
            online.observe(x_old[i], y_old[i])
        for i in range(150):
            online.observe(x_new[i], y_new[i])

        x_test, y_test = make_data(n=30, seed=3, scale=3.0)
        frozen_err = np.abs(
            frozen.predict(x_test)[:, 0] - y_test[:, 0]
        ).mean()
        online_err = np.abs(
            online.predict(x_test)[:, 0] - y_test[:, 0]
        ).mean()
        assert online_err < frozen_err

    def test_feature_width_change_rejected(self):
        online = OnlinePredictor(log_features=False)
        online.observe(np.ones(4), np.ones(6))
        with pytest.raises(ModelError):
            online.observe(np.ones(5), np.ones(6))

    def test_invalid_params(self):
        with pytest.raises(ModelError):
            OnlinePredictor(window_size=2)
        with pytest.raises(ModelError):
            OnlinePredictor(refit_interval=0)
        with pytest.raises(ModelError):
            OnlinePredictor(recency_boost=1.5)


class TestCostCalibrator:
    def test_recovers_power_law(self):
        rng = np.random.default_rng(0)
        costs = rng.uniform(10, 10_000, 200)
        elapsed = 0.01 * costs**1.5
        calibrator = CostCalibrator().fit(costs, elapsed)
        assert calibrator.slope == pytest.approx(1.5, abs=0.01)
        assert calibrator.r_squared == pytest.approx(1.0, abs=1e-6)
        predicted = calibrator.predict_seconds(np.array([100.0]))
        assert predicted[0] == pytest.approx(0.01 * 100**1.5, rel=0.01)

    def test_scatter_factors(self):
        costs = np.array([10.0, 100.0, 1000.0, 10000.0])
        elapsed = np.array([1.0, 10.0, 100.0, 1000.0])
        calibrator = CostCalibrator().fit(costs, elapsed)
        factors = calibrator.scatter_factors(
            np.array([100.0]), np.array([100.0])
        )
        assert factors[0] == pytest.approx(10.0, rel=0.05)

    def test_noisy_costs_low_r_squared(self):
        rng = np.random.default_rng(1)
        costs = rng.uniform(10, 1000, 100)
        elapsed = rng.uniform(0.1, 100, 100)  # unrelated
        calibrator = CostCalibrator().fit(costs, elapsed)
        assert calibrator.r_squared < 0.3

    def test_not_fitted(self):
        with pytest.raises(NotFittedError):
            CostCalibrator().predict_seconds(np.array([1.0]))

    def test_fit_validation(self):
        with pytest.raises(ModelError):
            CostCalibrator().fit(np.ones(2), np.ones(2))
