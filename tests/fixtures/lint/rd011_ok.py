"""RD011 clean: shared segments go through the ioutils ArrayPlane API."""

import numpy as np

from repro.ioutils import attach_arrays, publish_arrays


def publish(table: np.ndarray):
    plane = publish_arrays({"table": table})
    return plane.handle


def attach(handle):
    return attach_arrays(handle)
