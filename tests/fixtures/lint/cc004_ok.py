"""CC004 clean: the wait re-checks its predicate in a while loop."""

from repro.analysis.sanitizer import make_condition


class Queue:
    def __init__(self):
        self._cond = make_condition("serve.fixture.queue")
        self.items = []

    def take(self):
        with self._cond:
            while not self.items:
                self._cond.wait(timeout=1.0)
            return self.items.pop()
