"""RD005 clean: artifact writes go through atomic_savez."""

import numpy as np

from repro.ioutils import atomic_savez


def persist(path: str) -> None:
    atomic_savez(path, weights=np.zeros(3))
