"""CC007 clean: every post-init write is guarded, or lives in a
``*_locked`` helper (the caller-holds-lock convention)."""

from repro.analysis.sanitizer import make_lock


class Ladder:
    def __init__(self):
        self._lock = make_lock("serve.fixture.ladder")
        self.tier = 0

    def step(self):
        with self._lock:
            self._bump_locked()

    def _bump_locked(self):
        self.tier += 1

    def reset(self):
        with self._lock:
            self.tier = 0
