"""RD002 clean: randomness flows through seeded numpy generators."""

import numpy as np

rng = np.random.default_rng(3)
value = rng.uniform(0.0, 1.0)
