"""CC008 clean: keep a reference; a signal handler can set it."""

import threading


def serve_forever(install_signal_handler):
    stop = threading.Event()

    def _on_stop(signum, frame):
        stop.set()

    install_signal_handler("SIGTERM", _on_stop)
    stop.wait()
