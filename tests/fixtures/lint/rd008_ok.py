"""RD008 clean: failures are handled specifically or re-raised."""


def compute() -> int:
    return 1


def load_or_default() -> int:
    try:
        return compute()
    except ValueError:
        return 0
    except Exception:
        raise
