"""RD009 clean: fully annotated strict-module code."""


def scale(values: list[float], factor: float = 2.0) -> list[float]:
    return [value * factor for value in values]


class Holder:
    def __init__(self, value: float) -> None:
        self.value = value

    def doubled(self) -> float:
        return self.value * 2.0
