"""CC001 violation: raw threading primitives outside the factory."""

import threading


class Worker:
    def __init__(self):
        self.lock = threading.Lock()
        self.cond = threading.Condition()
