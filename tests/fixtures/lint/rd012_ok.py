"""RD012 clean: network access goes through the repro.serve client."""

from repro.serve import ServeClient


def fetch(host: str, port: int) -> dict:
    client = ServeClient(host, port)
    return client.health()
