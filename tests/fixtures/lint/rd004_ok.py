"""RD004 clean: perf_counter is an interval clock, not wall time."""

import time

start = time.perf_counter()
elapsed = time.perf_counter() - start
