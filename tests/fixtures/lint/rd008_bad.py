"""RD008 violation: silently swallowed exceptions (lint under repro/core/)."""


def compute() -> int:
    return 1


def load_or_default() -> int:
    try:
        return compute()
    except Exception:
        pass
    try:
        return compute()
    except:  # noqa: E722
        ...
    return 0
