"""CC005 violation: the same non-reentrant lock acquired twice."""

from repro.analysis.sanitizer import make_lock


class Account:
    def __init__(self):
        self._lock = make_lock("serve.fixture.account")
        self.balance = 0

    def audit(self):
        with self._lock:
            with self._lock:
                return self.balance
