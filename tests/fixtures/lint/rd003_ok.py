"""RD003 clean: a local generator instead of global state."""

import numpy as np

rng = np.random.default_rng(0)
