"""RD013 violation: ad-hoc process control outside the supervisor."""

import os
import signal


def restart_worker(pid: int) -> int:
    os.kill(pid, signal.SIGTERM)
    child = os.fork()
    if child == 0:
        signal.signal(signal.SIGHUP, signal.SIG_IGN)
    return child
