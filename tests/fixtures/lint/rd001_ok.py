"""RD001 clean: every generator is explicitly seeded."""

import numpy as np

rng = np.random.default_rng(7)
other = np.random.default_rng(seed=11)
