"""RD013 clean: signal handling routed through the supervisor helper."""

from repro.serve.supervisor import install_signal_handler


def install_reload_handler(handler) -> None:
    install_signal_handler("SIGHUP", handler)
