"""A violation silenced by an inline allow comment."""

import numpy as np

rng = np.random.default_rng()  # repro: allow[RD001]
