"""RD005 violation: raw np.savez outside repro/ioutils.py."""

import numpy as np


def persist(path: str) -> None:
    np.savez(path, weights=np.zeros(3))
