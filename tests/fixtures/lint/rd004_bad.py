"""RD004 violation: wall-clock read in a deterministic module."""

import time

stamp = time.time()
