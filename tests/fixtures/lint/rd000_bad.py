"""RD000 violation: the file below does not parse."""


def broken(:
    pass
