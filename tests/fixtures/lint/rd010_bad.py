"""RD010 violation: a parameterised SQL template hard-coded in code."""

TEMPLATE = (
    "SELECT i_category, sum(ss_sales_price) FROM store_sales, item "
    "WHERE i_category = '{category}' GROUP BY i_category"
)
