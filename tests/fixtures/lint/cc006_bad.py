"""CC006 violation: sleeping while holding the lock."""

import time

from repro.analysis.sanitizer import make_lock


class Flusher:
    def __init__(self):
        self._lock = make_lock("serve.fixture.flusher")
        self.pending = []

    def flush(self):
        with self._lock:
            time.sleep(0.1)
            self.pending = []
