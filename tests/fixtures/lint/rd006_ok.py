"""RD006 clean: every armed site comes from the registered list."""

from repro.resilience.faults import FaultPlan

plan = (
    FaultPlan(seed=0)
    .on("engine.operator", mode="raise", rate=0.5)
    .on("artifact.write", mode="raise", rate=0.1)
    .on("serve.supervisor", mode="exit", calls={2})
    .on("serve.batch", mode="hang", delay=0.05)
)
