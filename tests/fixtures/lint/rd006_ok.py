"""RD006 clean: every armed site comes from the registered list."""

from repro.resilience.faults import FaultPlan

plan = (
    FaultPlan(seed=0)
    .on("engine.operator", mode="raise", rate=0.5)
    .on("artifact.write", mode="raise", rate=0.1)
)
