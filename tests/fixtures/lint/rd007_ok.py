"""RD007 clean: only module-level functions cross the pool boundary."""

from concurrent.futures import ProcessPoolExecutor


def helper(value: int) -> int:
    return value + 1


def run() -> list[int]:
    with ProcessPoolExecutor() as pool:
        first = pool.submit(helper, 0)
        rest = pool.map(helper, [1, 2, 3])
        return [first.result(), *rest]
