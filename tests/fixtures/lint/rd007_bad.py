"""RD007 violation: non-picklable callables handed to a process pool."""

from concurrent.futures import ProcessPoolExecutor


def run() -> list[int]:
    def helper(value: int) -> int:
        return value + 1

    with ProcessPoolExecutor() as pool:
        first = pool.submit(lambda: 1)
        rest = pool.map(helper, [1, 2, 3])
        return [first.result(), *rest]
