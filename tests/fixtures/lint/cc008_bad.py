"""CC008 violation: waiting on an event nothing can ever set."""

import threading


def serve_forever():
    threading.Event().wait()
