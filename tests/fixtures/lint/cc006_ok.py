"""CC006 clean: snapshot under the lock, block outside it."""

import time

from repro.analysis.sanitizer import make_lock


class Flusher:
    def __init__(self):
        self._lock = make_lock("serve.fixture.flusher")
        self.pending = []

    def flush(self):
        with self._lock:
            batch = list(self.pending)
            self.pending = []
        time.sleep(0.1)
        return batch
