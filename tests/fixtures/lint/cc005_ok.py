"""CC005 clean: nesting distinct locks, or a re-entrant rlock."""

from repro.analysis.sanitizer import make_lock, make_rlock


class Account:
    def __init__(self):
        self._lock = make_lock("serve.fixture.account")
        self._audit_lock = make_lock("serve.fixture.audit")
        self._rlock = make_rlock("serve.fixture.reentrant")
        self.balance = 0

    def audit(self):
        with self._audit_lock:
            with self._lock:
                return self.balance

    def nested_reentrant(self):
        with self._rlock:
            with self._rlock:
                return self.balance
