"""RD006 violation: arming a fault site that is not registered."""

from repro.resilience.faults import FaultPlan

plan = FaultPlan(seed=0).on("bogus.site", mode="raise", rate=1.0)
