"""CC004 violation: if-guarded Condition.wait proceeds on stale state."""

from repro.analysis.sanitizer import make_condition


class Queue:
    def __init__(self):
        self._cond = make_condition("serve.fixture.queue")
        self.items = []

    def take(self):
        with self._cond:
            if not self.items:
                self._cond.wait(timeout=1.0)
            return self.items.pop()
