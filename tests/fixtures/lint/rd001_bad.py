"""RD001 violation: default_rng() with no seed."""

import numpy as np

rng = np.random.default_rng()
