"""RD012 violation: raw network I/O outside the serving daemon."""

import socket
from http.client import HTTPConnection


def probe(host: str, port: int) -> bool:
    with socket.create_connection((host, port), timeout=1.0):
        return True


def fetch(host: str, port: int) -> bytes:
    connection = HTTPConnection(host, port)
    connection.request("GET", "/healthz")
    return connection.getresponse().read()
