"""CC001 clean: locks come from the sanitizer factory."""

from repro.analysis.sanitizer import make_condition, make_lock


class Worker:
    def __init__(self):
        self.lock = make_lock("serve.fixture.worker")
        self.cond = make_condition("serve.fixture.worker_cond")
