"""CC003 clean: globals mutated under a lock; thread-local and
constant-rebinding forms are exempt."""

import threading

from repro.analysis.sanitizer import make_lock

_CACHE: dict = {}
_CACHE_LOCK = make_lock("serve.fixture.cache")
_LOCAL = threading.local()
_ENABLED = False


def remember(key, value):
    with _CACHE_LOCK:
        _CACHE[key] = value


def stash(value):
    _LOCAL.value = value


def enable():
    global _ENABLED
    _ENABLED = True
