"""RD011 violation: raw SharedMemory outside repro/ioutils.py."""

from multiprocessing import shared_memory


def publish(payload: bytes) -> str:
    segment = shared_memory.SharedMemory(create=True, size=len(payload))
    segment.buf[: len(payload)] = payload
    return segment.name
