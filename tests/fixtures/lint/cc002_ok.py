"""CC002 clean: with-statement, or acquire inside a try whose finally
releases."""

from repro.analysis.sanitizer import make_lock


class Box:
    def __init__(self):
        self._lock = make_lock("serve.fixture.box")
        self.items = []

    def push(self, item):
        with self._lock:
            self.items.append(item)

    def pop(self):
        try:
            self._lock.acquire(timeout=1.0)
            return self.items.pop()
        finally:
            self._lock.release()
