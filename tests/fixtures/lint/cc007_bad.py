"""CC007 violation: tier guarded in one method, bare in another."""

from repro.analysis.sanitizer import make_lock


class Ladder:
    def __init__(self):
        self._lock = make_lock("serve.fixture.ladder")
        self.tier = 0

    def step(self):
        with self._lock:
            self.tier += 1

    def reset(self):
        self.tier = 0
