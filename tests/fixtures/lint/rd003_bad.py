"""RD003 violation: global RNG seeding."""

import numpy as np

np.random.seed(0)
