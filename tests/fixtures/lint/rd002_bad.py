"""RD002 violation: stdlib random imported outside repro/rng.py."""

import random

value = random.uniform(0.0, 1.0)
