"""Clean for RD010: SQL without placeholders, placeholders without SQL."""

STATIC_SQL = "SELECT count(*) FROM store_sales"
LOG_MESSAGE = "rendered {n} templates from {path}"
