"""CC002 violation: bare acquire with no release guard in sight."""

from repro.analysis.sanitizer import make_lock


class Box:
    def __init__(self):
        self._lock = make_lock("serve.fixture.box")
        self.items = []

    def push(self, item):
        self._lock.acquire()
        self.items.append(item)
        self._lock.release()
