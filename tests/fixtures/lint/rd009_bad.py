"""RD009 violation: unannotated def (lint under repro/core/)."""


def scale(values, factor=2.0):
    return [value * factor for value in values]
