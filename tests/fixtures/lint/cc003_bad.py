"""CC003 violation: module globals mutated bare from functions."""

_CACHE: dict = {}
_TOTAL = 0


def remember(key, value):
    _CACHE[key] = value


def bump(n):
    global _TOTAL
    _TOTAL += n


def forget(key):
    _CACHE.pop(key, None)
