"""Vectorised expression evaluation tests."""

import numpy as np
import pytest

from repro.errors import ExecutionError
from repro.sql.ast import ColumnRef
from repro.sql.eval import evaluate, like_to_regex, resolve_column
from repro.sql.parser import parse


def where_of(sql_condition):
    return parse(f"SELECT * FROM t WHERE {sql_condition}").where


def select_expr(sql_expression):
    return parse(f"SELECT {sql_expression} FROM t").select[0].expr


@pytest.fixture()
def batch():
    return {
        "t.a": np.array([1, 2, 3, 4, 5]),
        "t.b": np.array([10.0, 20.0, 30.0, 40.0, np.nan]),
        "t.name": np.array(["alpha", "beta", "gamma", "alphabet", "x"]),
    }


class TestArithmetic:
    def test_addition(self, batch):
        result = evaluate(select_expr("t.a + 1"), batch, 5)
        assert list(result) == [2, 3, 4, 5, 6]

    def test_multiplication_of_columns(self, batch):
        result = evaluate(select_expr("t.a * t.a"), batch, 5)
        assert list(result) == [1, 4, 9, 16, 25]

    def test_division(self, batch):
        result = evaluate(select_expr("t.a / 2"), batch, 5)
        assert result[1] == pytest.approx(1.0)

    def test_unary_minus(self, batch):
        result = evaluate(select_expr("-t.a"), batch, 5)
        assert list(result) == [-1, -2, -3, -4, -5]

    def test_modulo(self, batch):
        result = evaluate(select_expr("t.a % 2"), batch, 5)
        assert list(result) == [1, 0, 1, 0, 1]

    def test_literal_broadcast(self, batch):
        result = evaluate(select_expr("7"), batch, 5)
        assert list(result) == [7] * 5


class TestComparisons:
    def test_greater(self, batch):
        result = evaluate(where_of("t.a > 3"), batch, 5)
        assert list(result) == [False, False, False, True, True]

    def test_equality_on_strings(self, batch):
        result = evaluate(where_of("t.name = 'beta'"), batch, 5)
        assert list(result) == [False, True, False, False, False]

    def test_not_equal(self, batch):
        result = evaluate(where_of("t.a <> 2"), batch, 5)
        assert result.sum() == 4

    def test_and_or(self, batch):
        result = evaluate(where_of("t.a > 1 AND t.a < 4"), batch, 5)
        assert list(result) == [False, True, True, False, False]
        result = evaluate(where_of("t.a = 1 OR t.a = 5"), batch, 5)
        assert list(result) == [True, False, False, False, True]

    def test_not(self, batch):
        result = evaluate(where_of("NOT t.a > 3"), batch, 5)
        assert list(result) == [True, True, True, False, False]


class TestSpecialPredicates:
    def test_between(self, batch):
        result = evaluate(where_of("t.a BETWEEN 2 AND 4"), batch, 5)
        assert list(result) == [False, True, True, True, False]

    def test_not_between(self, batch):
        result = evaluate(where_of("t.a NOT BETWEEN 2 AND 4"), batch, 5)
        assert list(result) == [True, False, False, False, True]

    def test_in_list(self, batch):
        result = evaluate(where_of("t.a IN (1, 3, 5)"), batch, 5)
        assert list(result) == [True, False, True, False, True]

    def test_in_list_strings(self, batch):
        result = evaluate(where_of("t.name IN ('alpha', 'x')"), batch, 5)
        assert list(result) == [True, False, False, False, True]

    def test_in_list_with_negative_literal(self, batch):
        result = evaluate(where_of("t.a IN (-1, 3)"), batch, 5)
        assert list(result) == [False, False, True, False, False]

    def test_in_list_with_column_reference(self, batch):
        columns = dict(batch)
        columns["t.c"] = np.array([1, 9, 9, 4, 9])
        result = evaluate(where_of("t.a IN (t.c, 5)"), columns, 5)
        assert list(result) == [True, False, False, True, True]

    def test_like_prefix(self, batch):
        result = evaluate(where_of("t.name LIKE 'alpha%'"), batch, 5)
        assert list(result) == [True, False, False, True, False]

    def test_like_underscore(self, batch):
        result = evaluate(where_of("t.name LIKE '_eta'"), batch, 5)
        assert list(result) == [False, True, False, False, False]

    def test_not_like(self, batch):
        result = evaluate(where_of("t.name NOT LIKE '%a%'"), batch, 5)
        assert list(result) == [False, False, False, False, True]

    def test_is_null_on_float(self, batch):
        result = evaluate(where_of("t.b IS NULL"), batch, 5)
        assert list(result) == [False, False, False, False, True]

    def test_is_not_null(self, batch):
        result = evaluate(where_of("t.b IS NOT NULL"), batch, 5)
        assert result.sum() == 4

    def test_is_null_on_int_is_false(self, batch):
        result = evaluate(where_of("t.a IS NULL"), batch, 5)
        assert not result.any()

    def test_case_when(self, batch):
        expr = select_expr("CASE WHEN t.a > 3 THEN 1 ELSE 0 END")
        result = evaluate(expr, batch, 5)
        assert list(result) == [0, 0, 0, 1, 1]

    def test_subquery_predicates_rejected(self, batch):
        with pytest.raises(ExecutionError):
            evaluate(where_of("t.a IN (SELECT x FROM u)"), batch, 5)


class TestColumnResolution:
    def test_qualified_lookup(self, batch):
        assert resolve_column(batch, ColumnRef("a", "t"))[0] == 1

    def test_bare_lookup_unique_suffix(self, batch):
        assert resolve_column(batch, ColumnRef("name"))[1] == "beta"

    def test_unknown_column(self, batch):
        with pytest.raises(ExecutionError):
            resolve_column(batch, ColumnRef("zzz", "t"))

    def test_ambiguous_bare_column(self):
        columns = {"a.x": np.array([1]), "b.x": np.array([2])}
        with pytest.raises(ExecutionError):
            resolve_column(columns, ColumnRef("x"))


class TestLikeToRegex:
    def test_percent(self):
        assert like_to_regex("a%b") == "a.*b"

    def test_underscore(self):
        assert like_to_regex("a_b") == "a.b"

    def test_escapes_regex_metacharacters(self):
        import re

        pattern = like_to_regex("a.b+c")
        assert re.fullmatch(pattern, "a.b+c")
        assert not re.fullmatch(pattern, "axb+c")
