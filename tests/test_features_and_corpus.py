"""Feature vectors, corpus construction/caching, splits, report rendering."""

import numpy as np
import pytest

from repro.core.features import (
    PLAN_FEATURE_NAMES,
    FeatureSpace,
    plan_feature_vector,
)
from repro.engine.metrics import METRIC_NAMES
from repro.errors import ReproError
from repro.experiments.corpus import (
    load_corpus,
    load_or_build_corpus,
    save_corpus,
)
from repro.experiments.harness import (
    evaluate_metrics,
    split_counts,
    stratified_split,
)
from repro.experiments.report import (
    format_pool_table,
    format_risk_table,
    format_value,
    hms,
)
from repro.workloads.categories import QueryCategory


class TestPlanFeatures:
    def test_vector_width_matches_names(self, optimizer):
        plan = optimizer.optimize("SELECT * FROM item i").plan
        vector = plan_feature_vector(plan)
        assert vector.shape == (len(PLAN_FEATURE_NAMES),)

    def test_counts_and_cardinalities(self, optimizer):
        plan = optimizer.optimize(
            "SELECT count(*) AS c FROM store_sales ss, item i "
            "WHERE ss.ss_item_sk = i.i_item_sk"
        ).plan
        vector = plan_feature_vector(plan)
        features = dict(zip(PLAN_FEATURE_NAMES, vector))
        assert features["file_scan_count"] == 2
        assert features["hash_join_count"] == 1
        assert features["hash_join_cardinality"] > 0
        assert features["nested_join_count"] == 0

    def test_cardinality_sums_use_estimates(self, optimizer):
        plan = optimizer.optimize("SELECT * FROM store_sales ss").plan
        features = dict(zip(PLAN_FEATURE_NAMES, plan_feature_vector(plan)))
        # Unfiltered scan: the estimate equals the table row count.
        assert features["file_scan_cardinality"] == pytest.approx(
            plan.walk().__next__().estimated_rows, rel=1.0
        )

    def test_log_scale(self, optimizer):
        plan = optimizer.optimize("SELECT * FROM item i").plan
        raw = plan_feature_vector(plan)
        logged = plan_feature_vector(plan, log_scale=True)
        assert np.allclose(logged, np.log1p(raw))

    def test_feature_space_matrices(self, optimizer):
        plans = [
            optimizer.optimize("SELECT * FROM item i").plan,
            optimizer.optimize("SELECT * FROM store s").plan,
        ]
        space = FeatureSpace.for_plans()
        matrix = space.matrix_from_plans(plans)
        assert matrix.shape == (2, space.width)

    def test_feature_space_rejects_bad_width(self):
        space = FeatureSpace(("a", "b"))
        with pytest.raises(ValueError):
            space.matrix_from_vectors([np.ones(3)])

    def test_different_queries_different_vectors(self, optimizer):
        v1 = plan_feature_vector(
            optimizer.optimize("SELECT * FROM item i").plan
        )
        v2 = plan_feature_vector(
            optimizer.optimize(
                "SELECT count(*) AS c FROM store_sales ss, item i "
                "WHERE ss.ss_item_sk = i.i_item_sk GROUP BY i.i_category"
            ).plan
        )
        assert not np.array_equal(v1, v2)


class TestCorpus:
    def test_mini_corpus_shapes(self, mini_corpus):
        n = len(mini_corpus)
        assert n == 140
        assert mini_corpus.feature_matrix().shape == (
            n, len(PLAN_FEATURE_NAMES)
        )
        assert mini_corpus.sql_feature_matrix().shape == (n, 9)
        assert mini_corpus.performance_matrix().shape == (n, 6)
        assert len(mini_corpus.elapsed_times()) == n

    def test_metrics_are_physical(self, mini_corpus):
        perf = mini_corpus.performance_matrix()
        assert (perf >= 0).all()
        elapsed = mini_corpus.elapsed_times()
        assert (elapsed > 0).all()

    def test_records_used_le_accessed(self, mini_corpus):
        accessed = mini_corpus.performance_matrix()[
            :, METRIC_NAMES.index("records_accessed")
        ]
        used = mini_corpus.performance_matrix()[
            :, METRIC_NAMES.index("records_used")
        ]
        assert (used <= accessed).all()

    def test_subset_preserves_order(self, mini_corpus):
        subset = mini_corpus.subset([5, 2, 9])
        assert subset.queries[0].query_id == mini_corpus.queries[5].query_id
        assert len(subset) == 3

    def test_category_indices_partition(self, mini_corpus):
        indices = mini_corpus.category_indices()
        total = sum(len(v) for v in indices.values())
        assert total == len(mini_corpus)

    def test_save_load_round_trip(self, mini_corpus, tmp_path):
        path = tmp_path / "corpus.npz"
        save_corpus(mini_corpus, path)
        loaded = load_corpus(path)
        assert len(loaded) == len(mini_corpus)
        assert loaded.config_name == mini_corpus.config_name
        assert np.allclose(
            loaded.feature_matrix(), mini_corpus.feature_matrix()
        )
        assert np.allclose(
            loaded.performance_matrix(), mini_corpus.performance_matrix()
        )
        assert loaded.queries[7].sql == mini_corpus.queries[7].sql
        assert loaded.queries[7].template == mini_corpus.queries[7].template

    def test_version_mismatch_rejected(self, mini_corpus, tmp_path):
        import repro.experiments.corpus as corpus_module

        path = tmp_path / "corpus.npz"
        save_corpus(mini_corpus, path)
        original = corpus_module.CORPUS_FORMAT_VERSION
        corpus_module.CORPUS_FORMAT_VERSION = original + 1
        try:
            with pytest.raises(ReproError):
                load_corpus(path)
        finally:
            corpus_module.CORPUS_FORMAT_VERSION = original

    def test_load_or_build_uses_cache(self, mini_corpus, tmp_path):
        path = tmp_path / "c.npz"
        calls = []

        def builder():
            calls.append(1)
            return mini_corpus

        first = load_or_build_corpus(path, builder)
        second = load_or_build_corpus(path, builder)
        assert len(calls) == 1
        assert len(first) == len(second)

    def test_load_or_build_rebuild_flag(self, mini_corpus, tmp_path):
        path = tmp_path / "c.npz"
        calls = []

        def builder():
            calls.append(1)
            return mini_corpus

        load_or_build_corpus(path, builder)
        load_or_build_corpus(path, builder, rebuild=True)
        assert len(calls) == 2

    def test_executed_query_helpers(self, mini_corpus):
        query = mini_corpus.queries[0]
        assert query.elapsed_time == query.performance[0]
        assert query.category.value in (
            "feather", "golf_ball", "bowling_ball", "wrecking_ball"
        )
        assert query.metrics.records_accessed >= 0


class TestStratifiedSplit:
    def test_counts_respected(self, mini_corpus):
        available = mini_corpus.category_indices()
        n_feathers = len(available.get(QueryCategory.FEATHER, []))
        train_counts, test_counts = split_counts(
            min(40, n_feathers - 5), 0, 0, 5, 0, 0
        )
        train, test = stratified_split(
            mini_corpus, train_counts, test_counts, seed=1
        )
        assert len(test) == 5
        assert len(train) == min(40, n_feathers - 5)

    def test_train_test_disjoint(self, mini_corpus):
        train_counts, test_counts = split_counts(30, 5, 0, 10, 2, 0)
        train, test = stratified_split(
            mini_corpus, train_counts, test_counts, seed=2
        )
        train_ids = {q.query_id for q in train.queries}
        test_ids = {q.query_id for q in test.queries}
        assert not train_ids & test_ids

    def test_deterministic(self, mini_corpus):
        train_counts, test_counts = split_counts(20, 0, 0, 5, 0, 0)
        a = stratified_split(mini_corpus, train_counts, test_counts, seed=3)
        b = stratified_split(mini_corpus, train_counts, test_counts, seed=3)
        assert [q.query_id for q in a[0].queries] == [
            q.query_id for q in b[0].queries
        ]

    def test_missing_category_raises(self, mini_corpus):
        counts = {QueryCategory.WRECKING_BALL: 5}
        with pytest.raises(ReproError):
            stratified_split(mini_corpus, counts, {}, seed=1)


class TestEvaluateAndReport:
    def test_evaluate_metrics_keys(self):
        predicted = np.random.default_rng(0).uniform(1, 2, (10, 6))
        actual = predicted * 1.01
        risks = evaluate_metrics(predicted, actual)
        assert set(risks) == set(METRIC_NAMES)
        assert all(risk > 0.9 for risk in risks.values())

    def test_degenerate_metric_is_nan(self):
        predicted = np.ones((5, 6))
        actual = np.ones((5, 6))
        risks = evaluate_metrics(predicted, actual)
        assert all(np.isnan(v) for v in risks.values())

    def test_format_value_null(self):
        assert format_value(float("nan")) == "Null"
        assert "0.55" in format_value(0.55)

    def test_risk_table_contains_all_metrics(self):
        table = format_risk_table(
            {"Euclidean": {m: 0.5 for m in METRIC_NAMES}},
            title="Table I",
        )
        assert "Table I" in table
        assert "Elapsed Time" in table
        assert "Message Bytes" in table

    def test_hms(self):
        assert hms(0) == "00:00:00"
        assert hms(59.6) == "00:01:00"
        assert hms(3661) == "01:01:01"
        assert hms(7199.4) == "01:59:59"

    def test_pool_table(self):
        from repro.experiments.experiments import PoolRow

        table = format_pool_table(
            [PoolRow("feather", 100, 8.0, 0.5, 179.0)]
        )
        assert "feather" in table
        assert "100" in table
