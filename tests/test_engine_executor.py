"""Executor-level behaviour: metric accounting, configs, determinism."""

import pytest

from repro.engine import Executor
from repro.engine.plan import OperatorKind
from repro.engine.system import production_32node, research_4node
from repro.errors import PlanError
from repro.optimizer import Optimizer
from repro.rng import child_generator

JOIN_SQL = (
    "SELECT i.i_category, count(*) AS c, sum(ss.ss_sales_price) AS r "
    "FROM store_sales ss, item i "
    "WHERE ss.ss_item_sk = i.i_item_sk AND ss.ss_quantity > 10 "
    "GROUP BY i.i_category ORDER BY r DESC"
)


class TestMetricAccounting:
    def test_records_accessed_counts_all_scans(
        self, tpcds_catalog, optimizer, executor
    ):
        result = executor.execute(optimizer.optimize(JOIN_SQL).plan)
        expected = (
            tpcds_catalog.table("store_sales").n_rows
            + tpcds_catalog.table("item").n_rows
        )
        assert result.metrics.records_accessed == expected

    def test_records_used_reflects_filters(
        self, tpcds_catalog, optimizer, executor
    ):
        result = executor.execute(optimizer.optimize(JOIN_SQL).plan)
        metrics = result.metrics
        assert 0 < metrics.records_used < metrics.records_accessed

    def test_unfiltered_scan_uses_all_records(
        self, tpcds_catalog, optimizer, executor
    ):
        result = executor.execute(
            optimizer.optimize("SELECT count(*) AS c FROM item i").plan
        )
        n = tpcds_catalog.table("item").n_rows
        assert result.metrics.records_accessed == n
        assert result.metrics.records_used == n

    def test_messages_scale_with_exchanges(self, optimizer, executor):
        simple = executor.execute(
            optimizer.optimize("SELECT count(*) AS c FROM item i").plan
        )
        joined = executor.execute(optimizer.optimize(JOIN_SQL).plan)
        assert joined.metrics.message_count > simple.metrics.message_count
        assert joined.metrics.message_bytes > simple.metrics.message_bytes

    def test_cpu_seconds_positive(self, optimizer, executor):
        result = executor.execute(optimizer.optimize(JOIN_SQL).plan)
        assert result.metrics.cpu_seconds > 0

    def test_rows_returned_matches_batch(self, optimizer, executor):
        result = executor.execute(optimizer.optimize(JOIN_SQL).plan)
        assert result.metrics.rows_returned == result.n_rows


class TestDeterminism:
    def test_same_rng_same_elapsed(self, optimizer, executor):
        plan = optimizer.optimize(JOIN_SQL).plan
        a = executor.execute(plan, rng=child_generator(1, "q"))
        b = executor.execute(plan, rng=child_generator(1, "q"))
        assert a.metrics.elapsed_time == b.metrics.elapsed_time

    def test_different_rng_different_elapsed(self, optimizer, executor):
        plan = optimizer.optimize(JOIN_SQL).plan
        a = executor.execute(plan, rng=child_generator(1, "q1"))
        b = executor.execute(plan, rng=child_generator(1, "q2"))
        assert a.metrics.elapsed_time != b.metrics.elapsed_time

    def test_noise_free_without_rng(self, optimizer, executor):
        plan = optimizer.optimize(JOIN_SQL).plan
        a = executor.execute(plan)
        b = executor.execute(plan)
        assert a.metrics.elapsed_time == b.metrics.elapsed_time

    def test_counts_unaffected_by_noise(self, optimizer, executor):
        plan = optimizer.optimize(JOIN_SQL).plan
        noisy = executor.execute(plan, rng=child_generator(3, "x"))
        clean = executor.execute(plan)
        assert noisy.metrics.records_used == clean.metrics.records_used
        assert noisy.metrics.message_count == clean.metrics.message_count


class TestConfigurations:
    def test_more_nodes_faster(self, tpcds_catalog):
        times = {}
        for nodes in (4, 32):
            config = production_32node(nodes)
            optimizer = Optimizer(tpcds_catalog, config)
            executor = Executor(tpcds_catalog, config)
            result = executor.execute(optimizer.optimize(JOIN_SQL).plan)
            times[nodes] = result.metrics.elapsed_time
        assert times[32] < times[4]

    def test_plans_differ_across_systems(self, tpcds_catalog):
        """The paper: plans on the 32-node system differed from the 4-node
        system's (resources differ).  At minimum the estimated plan must
        execute with different message traffic."""
        counts = {}
        for config in (research_4node(), production_32node(32)):
            optimizer = Optimizer(tpcds_catalog, config)
            executor = Executor(tpcds_catalog, config)
            result = executor.execute(optimizer.optimize(JOIN_SQL).plan)
            counts[config.name] = result.metrics.message_count
        values = list(counts.values())
        assert values[0] != values[1]

    def test_small_memory_config_does_disk_io(self, tpcds_catalog):
        from dataclasses import replace

        config = replace(
            research_4node(), mem_per_node_bytes=64 * 1024, name="tiny-mem"
        )
        optimizer = Optimizer(tpcds_catalog, config)
        executor = Executor(tpcds_catalog, config)
        result = executor.execute(
            optimizer.optimize("SELECT count(*) AS c FROM store_sales ss").plan
        )
        assert result.metrics.disk_ios > 0

    def test_big_memory_config_no_disk_io(self, tpcds_catalog):
        from dataclasses import replace

        config = replace(
            research_4node(),
            mem_per_node_bytes=1024 * 1024 * 1024,
            name="big-mem",
        )
        optimizer = Optimizer(tpcds_catalog, config)
        executor = Executor(tpcds_catalog, config)
        result = executor.execute(
            optimizer.optimize("SELECT count(*) AS c FROM store_sales ss").plan
        )
        assert result.metrics.disk_ios == 0


class TestScanProjection:
    def test_output_columns_dropped_after_filter(self, optimizer, executor):
        from repro.engine.metrics import MetricsAccumulator
        from repro.engine.timing import ResourceModel

        plan = optimizer.optimize(
            "SELECT sum(ss.ss_sales_price) AS r FROM store_sales ss "
            "WHERE ss.ss_quantity > 20"
        ).plan
        scan = next(
            n for n in plan.walk() if n.kind == OperatorKind.FILE_SCAN
        )
        model = ResourceModel(
            executor.config, executor.buffer_pool, MetricsAccumulator()
        )
        batch = executor._run_scan(scan, model)
        assert set(batch.columns) == {"ss.ss_sales_price"}


class TestErrors:
    def test_unsupported_plan_node(self, executor):
        from repro.engine.plan import PlanNode

        bogus = PlanNode(kind=OperatorKind.FILE_SCAN)
        with pytest.raises(PlanError):
            executor.execute(bogus)
