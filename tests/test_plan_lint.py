"""Pack B of repro.analysis: plan lint on compiled PlanNode trees.

Each PL rule is exercised on a hand-built tree (positive and negative),
then the wiring is checked end to end: ``Optimizer.optimize`` attaches
warnings, the metrics counter increments, the trained service surfaces
warnings on :class:`Forecast` / ``lint()`` / ``explain()``, and the
``repro lint`` CLI exits 1 with the rule ID in its output.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import cli
from repro.analysis import (
    corpus_vocabulary,
    lint_plan,
    plan_vocabulary,
    vocabulary_warnings,
)
from repro.analysis.planlint import BROADCAST_WARN_BYTES
from repro.api import QueryPerformancePredictor
from repro.core.features import PLAN_FEATURE_NAMES, plan_feature_matrix
from repro.engine.plan import OperatorKind, PlanNode
from repro.engine.system import research_4node
from repro.obs import metrics as obs_metrics

#: Joins two small tables without a predicate at every tested scale.
CROSS_JOIN_SQL = (
    "SELECT count(*) AS c FROM store_sales ss, promotion p"
)
CLEAN_SQL = (
    "SELECT count(*) AS c FROM store_sales ss WHERE ss.ss_quantity > 30"
)


def scan(rows: float, row_bytes: float = 8.0) -> PlanNode:
    return PlanNode(
        kind=OperatorKind.FILE_SCAN,
        estimated_rows=rows,
        estimated_row_bytes=row_bytes,
        table_name="t",
    )


def join(
    kind: OperatorKind,
    left: PlanNode,
    right: PlanNode,
    estimate: float,
    join_pairs=(("a", "b"),),
) -> PlanNode:
    return PlanNode(
        kind=kind,
        children=(left, right),
        estimated_rows=estimate,
        join_pairs=join_pairs,
    )


def rule_ids(warnings) -> list[str]:
    return sorted(w.rule_id for w in warnings)


class TestStructuralRules:
    def test_pl001_cartesian_product(self):
        plan = join(
            OperatorKind.NESTED_JOIN,
            scan(100.0),
            scan(200.0),
            estimate=20_000.0,
            join_pairs=(),
        )
        warnings = lint_plan(plan)
        assert rule_ids(warnings) == ["PL001"]
        assert warnings[0].operator == "nested_join"
        assert warnings[0].severity == "warning"

    def test_pl001_negative_with_predicate(self):
        plan = join(
            OperatorKind.NESTED_JOIN, scan(100.0), scan(200.0), 150.0
        )
        assert lint_plan(plan) == []

    def test_pl002_inflated_estimate(self):
        plan = join(OperatorKind.HASH_JOIN, scan(10.0), scan(10.0), 200.0)
        assert rule_ids(lint_plan(plan)) == ["PL002"]

    def test_pl002_negative_at_the_cross_product_bound(self):
        plan = join(OperatorKind.HASH_JOIN, scan(10.0), scan(10.0), 100.0)
        assert lint_plan(plan) == []

    def test_pl003_collapsed_estimate(self):
        plan = join(
            OperatorKind.HASH_JOIN, scan(100_000.0), scan(50_000.0), 10.0
        )
        assert rule_ids(lint_plan(plan)) == ["PL003"]

    def test_pl003_negative_small_inputs_and_semi_joins(self):
        # Tiny inputs shrink legitimately.
        small = join(OperatorKind.HASH_JOIN, scan(500.0), scan(400.0), 0.0)
        assert lint_plan(small) == []
        # Semi/anti joins exist to shrink; excluded by design.
        semi = join(
            OperatorKind.SEMI_JOIN, scan(100_000.0), scan(50_000.0), 10.0
        )
        assert lint_plan(semi) == []

    def test_pl004_broadcast_blowup(self):
        child = scan(1_000_000.0, row_bytes=100.0)
        plan = PlanNode(
            kind=OperatorKind.EXCHANGE,
            children=(child,),
            estimated_rows=1_000_000.0,
            estimated_row_bytes=100.0,
            exchange_kind="broadcast",
        )
        warnings = lint_plan(plan)
        assert rule_ids(warnings) == ["PL004"]
        assert 1_000_000.0 * 100.0 > BROADCAST_WARN_BYTES

    def test_pl004_negative_small_or_partitioned(self):
        small = PlanNode(
            kind=OperatorKind.EXCHANGE,
            children=(scan(10.0),),
            estimated_rows=10.0,
            estimated_row_bytes=8.0,
            exchange_kind="broadcast",
        )
        assert lint_plan(small) == []
        partitioned = PlanNode(
            kind=OperatorKind.EXCHANGE,
            children=(scan(1e6, 100.0),),
            estimated_rows=1e6,
            estimated_row_bytes=100.0,
            exchange_kind="hash",
        )
        assert lint_plan(partitioned) == []

    def test_clean_tree_is_clean(self):
        plan = PlanNode(
            kind=OperatorKind.ROOT,
            children=(
                PlanNode(
                    kind=OperatorKind.SCALAR_AGGREGATE,
                    children=(
                        join(
                            OperatorKind.HASH_JOIN,
                            scan(10_000.0),
                            scan(500.0),
                            9_000.0,
                        ),
                    ),
                    estimated_rows=1.0,
                ),
            ),
            estimated_rows=1.0,
        )
        assert lint_plan(plan) == []


class TestVocabulary:
    def test_pl005_flags_unknown_operators(self):
        plan = join(OperatorKind.MERGE_JOIN, scan(10.0), scan(10.0), 10.0)
        vocabulary = ("file_scan", "hash_join")
        warnings = vocabulary_warnings(plan, vocabulary)
        assert rule_ids(warnings) == ["PL005"]
        assert "merge_join" in warnings[0].message
        # lint_plan with a vocabulary runs PL005 too.
        assert "PL005" in rule_ids(lint_plan(plan, vocabulary=vocabulary))

    def test_pl005_negative_inside_vocabulary(self):
        plan = join(OperatorKind.MERGE_JOIN, scan(10.0), scan(10.0), 10.0)
        assert vocabulary_warnings(plan, plan_vocabulary(plan)) == []

    def test_plan_vocabulary(self):
        plan = join(OperatorKind.HASH_JOIN, scan(10.0), scan(10.0), 10.0)
        assert plan_vocabulary(plan) == ("file_scan", "hash_join")

    def test_corpus_vocabulary_from_feature_matrix(self):
        plan = join(OperatorKind.HASH_JOIN, scan(10.0), scan(20.0), 15.0)
        matrix = plan_feature_matrix([plan])
        assert corpus_vocabulary(matrix) == ("file_scan", "hash_join")
        # log1p scaling keeps zero columns zero, so the vocabulary is
        # identical on the scaled matrix the pipeline actually stores.
        assert corpus_vocabulary(np.log1p(matrix)) == (
            "file_scan",
            "hash_join",
        )

    def test_corpus_vocabulary_rejects_wrong_shape(self):
        with pytest.raises(ValueError):
            corpus_vocabulary(np.zeros((3, len(PLAN_FEATURE_NAMES) + 1)))


class TestOptimizerWiring:
    def test_optimize_attaches_cartesian_warning(self, optimizer):
        optimized = optimizer.optimize(CROSS_JOIN_SQL)
        assert "PL001" in rule_ids(optimized.warnings)

    def test_optimize_clean_query_has_no_warnings(self, optimizer):
        assert optimizer.optimize(CLEAN_SQL).warnings == ()

    def test_warning_counter_increments(self, optimizer):
        was_enabled = obs_metrics.metrics_enabled()
        obs_metrics.enable_metrics()
        try:
            registry = obs_metrics.get_registry()
            counter = registry.counter("repro_lint_warnings_total")
            before = counter.value
            optimizer.optimize(CROSS_JOIN_SQL)
            assert counter.value >= before + 1
        finally:
            if not was_enabled:
                obs_metrics.disable_metrics()


@pytest.fixture(scope="module")
def service():
    return QueryPerformancePredictor.train_on_tpcds(
        n_queries=40,
        scale_factor=0.05,
        seed=7,
        config=research_4node(),
    )


class TestServiceWiring:
    def test_metadata_records_operator_vocabulary(self, service):
        vocabulary = service.pipeline.metadata["operator_vocabulary"]
        assert "file_scan" in vocabulary

    def test_forecast_carries_plan_warnings(self, service):
        clean, crossed = service.forecast_many([CLEAN_SQL, CROSS_JOIN_SQL])
        assert clean.warnings == ()
        assert "PL001" in rule_ids(crossed.warnings)

    def test_lint_method_matches_forecast(self, service):
        assert "PL001" in rule_ids(service.lint(CROSS_JOIN_SQL))
        assert service.lint(CLEAN_SQL) == ()

    def test_pl005_fires_outside_training_vocabulary(self, service):
        original = service.pipeline.metadata["operator_vocabulary"]
        service.pipeline.metadata["operator_vocabulary"] = ["file_scan"]
        try:
            warnings = service.lint(CLEAN_SQL)
            assert "PL005" in rule_ids(warnings)
        finally:
            service.pipeline.metadata["operator_vocabulary"] = original

    def test_explain_renders_warnings(self, service):
        text = service.explain(CROSS_JOIN_SQL)
        assert "plan lint" in text and "PL001" in text


class TestLintCli:
    def run(self, argv):
        return cli.main(["--scale", "0.05", "lint", *argv])

    def test_warning_exits_one(self, capsys):
        assert self.run([CROSS_JOIN_SQL]) == 1
        out = capsys.readouterr().out
        assert "PL001" in out and "1 warning(s)" in out

    def test_clean_exits_zero(self, capsys):
        assert self.run([CLEAN_SQL]) == 0
        assert "statement 0: ok" in capsys.readouterr().out

    def test_json_format(self, capsys):
        code = self.run(["--format", "json", CROSS_JOIN_SQL])
        payload = json.loads(capsys.readouterr().out)
        assert code == 1
        assert payload["total_warnings"] >= 1
        warning = payload["statements"][0]["warnings"][0]
        assert warning["rule_id"] == "PL001"
        assert warning["severity"] == "warning"

    def test_batch_file(self, tmp_path, capsys):
        batch = tmp_path / "workload.sql"
        batch.write_text(f"{CLEAN_SQL};\n{CROSS_JOIN_SQL};\n")
        assert self.run(["--batch", str(batch)]) == 1
        out = capsys.readouterr().out
        assert "statement 0: ok" in out and "statement 1:" in out

    def test_no_input_exits_two(self, capsys):
        assert self.run([]) == 2
        assert "lint needs" in capsys.readouterr().err


def test_bench_plan_lint_overhead_quick():
    from repro.experiments.bench import bench_plan_lint_overhead

    report = bench_plan_lint_overhead(
        n_queries=4, scale_factor=0.05, repeats=2
    )
    assert report["optimize"]["mean_ms"] > 0.0
    assert report["lint"]["mean_us"] > 0.0
    assert report["lint_pct_of_optimize"] > 0.0
