"""Brute-force reference SQL evaluator for correctness tests.

Evaluates the same AST the optimizer consumes, but the dumbest possible
way: materialise the full cross product of the FROM tables as Python
dicts, evaluate predicates row by row (including subqueries, re-evaluated
per row), then group/aggregate/sort with plain Python.  Exponentially slow
— and therefore convincingly correct on the tiny tables the integration
tests use.
"""

from __future__ import annotations

import itertools
import re
from typing import Any, Iterable, Optional

from repro.sql.ast import (
    Between,
    BinaryOp,
    CaseWhen,
    ColumnRef,
    Exists,
    Expr,
    FuncCall,
    InList,
    InSubquery,
    IsNull,
    Like,
    Literal,
    Query,
    Star,
    UnaryOp,
)

Row = dict[str, Any]
Tables = dict[str, list[Row]]


def run_reference(query: Query, tables: Tables) -> list[tuple]:
    """Evaluate ``query`` against ``tables``; returns result tuples."""
    rows = _filtered_rows(query, tables, outer_row=None)

    if query.group_by or _has_aggregate(query):
        groups = _group_rows(rows, query.group_by)
        out_rows = []
        for key_row, members in groups:
            if query.having is not None and not _eval(
                query.having, key_row, tables, members
            ):
                continue
            out_rows.append(_project(query.select, key_row, tables, members))
    else:
        out_rows = [_project(query.select, row, tables, [row]) for row in rows]

    if query.distinct:
        seen = set()
        unique = []
        for row in out_rows:
            key = tuple(row.values())
            if key not in seen:
                seen.add(key)
                unique.append(row)
        out_rows = unique

    if query.order_by:
        def sort_key(row):
            key = []
            for item in query.order_by:
                value = _order_value(item.expr, row, query, tables)
                key.append(-_num(value) if item.descending else _num(value))
            return key

        out_rows.sort(key=sort_key)

    if query.limit is not None:
        out_rows = out_rows[: query.limit]
    return [tuple(row.values()) for row in out_rows]


# ----------------------------------------------------------------------


def _num(value):
    if isinstance(value, str):
        return value
    return float(value)


def _has_aggregate(query: Query) -> bool:
    return query.has_aggregates


def _cross_product(query: Query, tables: Tables) -> Iterable[Row]:
    bindings = [(ref.binding, tables[ref.name]) for ref in query.tables]
    for combo in itertools.product(*(rows for _b, rows in bindings)):
        merged: Row = {}
        for (binding, _rows), row in zip(bindings, combo):
            for column, value in row.items():
                merged[f"{binding}.{column}"] = value
        yield merged


def _filtered_rows(
    query: Query, tables: Tables, outer_row: Optional[Row]
) -> list[Row]:
    result = []
    for row in _cross_product(query, tables):
        scoped = dict(outer_row or {})
        scoped.update(row)
        if query.where is None or _eval(query.where, scoped, tables, None):
            result.append(scoped)
    return result


def _group_rows(rows: list[Row], group_by) -> list[tuple[Row, list[Row]]]:
    if not group_by:
        return [({}, rows)] if rows or True else []
    groups: dict[tuple, list[Row]] = {}
    for row in rows:
        key = tuple(_lookup(expr, row) for expr in group_by)
        groups.setdefault(key, []).append(row)
    return [(members[0], members) for _key, members in sorted(
        groups.items(), key=lambda kv: tuple(str(v) for v in kv[0])
    )]


def _project(select, row, tables, members):
    out: Row = {}
    for index, item in enumerate(select):
        if isinstance(item.expr, Star):
            out.update(row)
            continue
        name = item.alias or f"col{index}"
        out[name] = _eval(item.expr, row, tables, members)
    return out


def _order_value(expr, projected_row, query, tables):
    if isinstance(expr, ColumnRef):
        if expr.table is None and expr.name in projected_row:
            return projected_row[expr.name]
        qualified = f"{expr.table}.{expr.name}" if expr.table else expr.name
        if qualified in projected_row:
            return projected_row[qualified]
    # Match by position against select expressions.
    for index, item in enumerate(query.select):
        if item.expr == expr:
            name = item.alias or f"col{index}"
            return projected_row[name]
    raise AssertionError(f"cannot order by {expr.to_sql()}")


def _lookup(expr: Expr, row: Row):
    assert isinstance(expr, ColumnRef)
    if expr.table is not None:
        return row[f"{expr.table}.{expr.name}"]
    matches = [k for k in row if k.split(".")[-1] == expr.name or k == expr.name]
    assert len(matches) == 1, f"ambiguous {expr.name}: {matches}"
    return row[matches[0]]


def _eval(expr: Expr, row: Row, tables: Tables, members: Optional[list[Row]]):
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        return _lookup(expr, row)
    if isinstance(expr, Star):
        raise AssertionError("* is not a scalar")
    if isinstance(expr, UnaryOp):
        value = _eval(expr.operand, row, tables, members)
        return (not value) if expr.op.upper() == "NOT" else -value
    if isinstance(expr, BinaryOp):
        op = expr.op.upper()
        if op == "AND":
            return bool(_eval(expr.left, row, tables, members)) and bool(
                _eval(expr.right, row, tables, members)
            )
        if op == "OR":
            return bool(_eval(expr.left, row, tables, members)) or bool(
                _eval(expr.right, row, tables, members)
            )
        left = _eval(expr.left, row, tables, members)
        right = _eval(expr.right, row, tables, members)
        return {
            "=": lambda: left == right,
            "<>": lambda: left != right,
            "<": lambda: left < right,
            "<=": lambda: left <= right,
            ">": lambda: left > right,
            ">=": lambda: left >= right,
            "+": lambda: left + right,
            "-": lambda: left - right,
            "*": lambda: left * right,
            "/": lambda: left / right,
            "%": lambda: left % right,
        }[expr.op]()
    if isinstance(expr, Between):
        value = _eval(expr.expr, row, tables, members)
        low = _eval(expr.low, row, tables, members)
        high = _eval(expr.high, row, tables, members)
        result = low <= value <= high
        return not result if expr.negated else result
    if isinstance(expr, InList):
        value = _eval(expr.expr, row, tables, members)
        values = {_eval(v, row, tables, members) for v in expr.values}
        result = value in values
        return not result if expr.negated else result
    if isinstance(expr, Like):
        value = str(_eval(expr.expr, row, tables, members))
        pattern = "".join(
            ".*" if ch == "%" else "." if ch == "_" else re.escape(ch)
            for ch in expr.pattern
        )
        result = re.fullmatch(pattern, value) is not None
        return not result if expr.negated else result
    if isinstance(expr, IsNull):
        value = _eval(expr.expr, row, tables, members)
        is_null = value is None or (
            isinstance(value, float) and value != value
        )
        return not is_null if expr.negated else is_null
    if isinstance(expr, CaseWhen):
        for cond, value in expr.branches:
            if _eval(cond, row, tables, members):
                return _eval(value, row, tables, members)
        if expr.default is not None:
            return _eval(expr.default, row, tables, members)
        return None
    if isinstance(expr, InSubquery):
        value = _eval(expr.expr, row, tables, members)
        sub_results = run_reference(expr.query, tables)
        values = {r[0] for r in sub_results}
        result = value in values
        return not result if expr.negated else result
    if isinstance(expr, Exists):
        matching = _filtered_rows(expr.query, tables, outer_row=row)
        result = bool(matching)
        return not result if expr.negated else result
    if isinstance(expr, FuncCall):
        return _eval_aggregate(expr, row, tables, members)
    raise AssertionError(f"cannot evaluate {type(expr).__name__}")


def _eval_aggregate(call: FuncCall, row, tables, members):
    name = call.name.lower()
    if members is None:
        raise AssertionError("aggregate outside grouping context")
    if name == "count" and (not call.args or isinstance(call.args[0], Star)):
        return float(len(members))
    values = [
        _eval(call.args[0], member, tables, [member]) for member in members
    ]
    if call.distinct:
        values = list(dict.fromkeys(values))
    if name == "count":
        return float(len(values))
    if not values:
        return float("nan")
    numeric = [float(v) for v in values]
    if name == "sum":
        return sum(numeric)
    if name == "avg":
        return sum(numeric) / len(numeric)
    if name == "min":
        return min(numeric)
    if name == "max":
        return max(numeric)
    raise AssertionError(f"unsupported aggregate {name}")
