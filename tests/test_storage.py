"""Storage layer tests: tables, partitioning, catalog, buffer pool."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CatalogError, StorageError
from repro.storage.buffer import BufferPool
from repro.storage.catalog import Catalog, ColumnStats
from repro.storage.partition import hash_partition, partition_counts, skew_factor
from repro.storage.table import Column, Schema, Table


def make_table(name="t", n=100):
    schema = Schema(
        [Column("id", "int"), Column("v", "float"), Column("s", "str")]
    )
    return Table(
        name,
        schema,
        {
            "id": np.arange(n),
            "v": np.linspace(0, 1, n),
            "s": np.array([f"s{i % 7}" for i in range(n)]),
        },
    )


class TestSchema:
    def test_invalid_kind_rejected(self):
        with pytest.raises(StorageError):
            Column("x", "decimal")

    def test_duplicate_names_rejected(self):
        with pytest.raises(StorageError):
            Schema([Column("a", "int"), Column("a", "float")])

    def test_row_bytes(self):
        schema = Schema([Column("a", "int"), Column("s", "str")])
        assert schema.row_bytes == 8 + 24

    def test_column_lookup(self):
        schema = Schema([Column("a", "int")])
        assert schema.column("a").kind == "int"
        with pytest.raises(StorageError):
            schema.column("b")

    def test_contains(self):
        schema = Schema([Column("a", "int")])
        assert "a" in schema
        assert "b" not in schema


class TestTable:
    def test_basic_properties(self):
        table = make_table(n=50)
        assert table.n_rows == 50
        assert table.column_names == ("id", "v", "s")
        assert table.row_bytes == 40
        assert table.total_bytes == 2000

    def test_missing_column_rejected(self):
        schema = Schema([Column("a", "int"), Column("b", "int")])
        with pytest.raises(StorageError):
            Table("t", schema, {"a": np.arange(3)})

    def test_extra_column_rejected(self):
        schema = Schema([Column("a", "int")])
        with pytest.raises(StorageError):
            Table("t", schema, {"a": np.arange(3), "z": np.arange(3)})

    def test_ragged_columns_rejected(self):
        schema = Schema([Column("a", "int"), Column("b", "int")])
        with pytest.raises(StorageError):
            Table("t", schema, {"a": np.arange(3), "b": np.arange(4)})

    def test_page_count_rounds_up(self):
        table = make_table(n=100)  # 4000 bytes
        assert table.page_count(page_size=1024) == 4
        assert table.page_count(page_size=4096) == 1
        assert table.page_count(page_size=3999) == 2

    def test_empty_table_zero_pages(self):
        schema = Schema([Column("a", "int")])
        table = Table("t", schema, {"a": np.array([], dtype=np.int64)})
        assert table.page_count() == 0

    def test_columns_dict_prefixes(self):
        table = make_table()
        columns = table.columns_dict("x")
        assert set(columns) == {"x.id", "x.v", "x.s"}

    def test_columns_dict_subset(self):
        table = make_table()
        columns = table.columns_dict("x", subset=("id",))
        assert set(columns) == {"x.id"}

    def test_columns_dict_unknown_subset(self):
        with pytest.raises(StorageError):
            make_table().columns_dict("x", subset=("missing",))


class TestPartitioning:
    def test_partition_ids_in_range(self):
        parts = hash_partition(np.arange(1000), 4)
        assert parts.min() >= 0
        assert parts.max() < 4

    def test_single_partition(self):
        parts = hash_partition(np.arange(10), 1)
        assert (parts == 0).all()

    def test_sequential_keys_spread_evenly(self):
        counts = partition_counts(np.arange(10_000), 4)
        assert counts.sum() == 10_000
        assert counts.max() / counts.min() < 1.2

    def test_string_keys(self):
        keys = np.array(["a", "b", "c", "a", "b"])
        parts = hash_partition(keys, 3)
        # Equal values land in equal partitions.
        assert parts[0] == parts[3]
        assert parts[1] == parts[4]

    def test_deterministic(self):
        keys = np.arange(100)
        assert np.array_equal(hash_partition(keys, 8), hash_partition(keys, 8))

    def test_invalid_partition_count(self):
        with pytest.raises(ValueError):
            hash_partition(np.arange(5), 0)

    def test_skew_factor_balanced(self):
        assert skew_factor(np.array([25, 25, 25, 25])) == 1.0

    def test_skew_factor_hot_partition(self):
        assert skew_factor(np.array([70, 10, 10, 10])) == pytest.approx(2.8)

    def test_skew_factor_empty(self):
        assert skew_factor(np.array([])) == 1.0

    @given(
        st.lists(st.integers(min_value=0, max_value=10_000), min_size=1,
                 max_size=300),
        st.integers(min_value=1, max_value=16),
    )
    @settings(max_examples=50, deadline=None)
    def test_partition_is_a_partition(self, keys, n_parts):
        """Property: every row lands in exactly one partition."""
        keys = np.array(keys)
        counts = partition_counts(keys, n_parts)
        assert counts.sum() == len(keys)
        assert len(counts) == n_parts
        assert (counts >= 0).all()

    @given(st.lists(st.integers(min_value=0, max_value=100), min_size=2,
                    max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_equal_keys_colocate(self, keys):
        """Property: equal keys always hash to the same partition."""
        keys = np.array(keys)
        parts = hash_partition(keys, 8)
        for value in np.unique(keys):
            assert len(np.unique(parts[keys == value])) == 1


class TestColumnStats:
    def test_numeric_stats(self):
        values = np.arange(1000, dtype=np.int64)
        stats = ColumnStats.from_array("c", "int", values)
        assert stats.n_distinct == 1000
        assert stats.min_value == 0
        assert stats.max_value == 999
        assert stats.histogram is not None
        assert len(stats.histogram) == 33

    def test_string_stats_most_common(self):
        values = np.array(["a"] * 70 + ["b"] * 20 + ["c"] * 10)
        stats = ColumnStats.from_array("c", "str", values)
        assert stats.n_distinct == 3
        assert stats.most_common[0] == ("a", pytest.approx(0.7))

    def test_empty_column(self):
        stats = ColumnStats.from_array("c", "int", np.array([], dtype=np.int64))
        assert stats.n_distinct == 0

    def test_float_with_nan(self):
        values = np.array([1.0, 2.0, np.nan, 2.0])
        stats = ColumnStats.from_array("c", "float", values)
        assert stats.n_distinct == 2
        assert stats.max_value == 2.0


class TestCatalog:
    def test_register_and_lookup(self):
        catalog = Catalog()
        catalog.register(make_table("a"))
        assert "a" in catalog
        assert catalog.table("a").n_rows == 100

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.register(make_table("a"))
        with pytest.raises(CatalogError):
            catalog.register(make_table("a"))

    def test_unknown_table(self):
        with pytest.raises(CatalogError):
            Catalog().table("nope")

    def test_stats_collected(self):
        catalog = Catalog()
        catalog.register(make_table("a", n=64))
        stats = catalog.stats("a")
        assert stats.row_count == 64
        assert stats.column("id").n_distinct == 64

    def test_stats_lazy_when_not_analyzed(self):
        catalog = Catalog()
        catalog.register(make_table("a"), analyze=False)
        assert catalog.stats("a").row_count == 100

    def test_unknown_column_stats(self):
        catalog = Catalog()
        catalog.register(make_table("a"))
        with pytest.raises(CatalogError):
            catalog.stats("a").column("nope")

    def test_total_bytes(self):
        catalog = Catalog()
        catalog.register(make_table("a", n=10))
        catalog.register(make_table("b", n=20))
        assert catalog.total_bytes == 10 * 40 + 20 * 40


class TestBufferPool:
    def test_small_tables_admitted_first(self):
        catalog = Catalog()
        catalog.register(make_table("small", n=10))  # 400 B
        catalog.register(make_table("large", n=1000))  # 40 kB
        pool = BufferPool(catalog, cache_bytes=1000)
        assert pool.is_resident("small")
        assert not pool.is_resident("large")

    def test_everything_fits(self):
        catalog = Catalog()
        catalog.register(make_table("a", n=10))
        catalog.register(make_table("b", n=10))
        pool = BufferPool(catalog, cache_bytes=10_000)
        assert pool.resident_tables == {"a", "b"}

    def test_nothing_fits(self):
        catalog = Catalog()
        catalog.register(make_table("a", n=100))
        pool = BufferPool(catalog, cache_bytes=100)
        assert not pool.resident_tables
