"""Workload tests: data generation, templates, pools, categories."""

import numpy as np
import pytest

from repro.engine import Executor
from repro.engine.system import research_4node
from repro.optimizer import Optimizer
from repro.rng import child_generator
from repro.workloads.categories import (
    BOWLING_BALL_MAX_S,
    FEATHER_MAX_S,
    GOLF_BALL_MAX_S,
    QueryCategory,
    categorize,
)
from repro.workloads.customer import CUSTOMER_TABLE_NAMES, customer_templates
from repro.workloads.generator import generate_pool
from repro.workloads.templates import problem_templates, tpcds_templates
from repro.workloads.tpcds import TPCDS_TABLE_NAMES, build_tpcds_catalog


class TestCategories:
    def test_boundaries(self):
        assert categorize(0.5) == QueryCategory.FEATHER
        assert categorize(FEATHER_MAX_S - 1) == QueryCategory.FEATHER
        assert categorize(FEATHER_MAX_S) == QueryCategory.GOLF_BALL
        assert categorize(GOLF_BALL_MAX_S) == QueryCategory.BOWLING_BALL
        assert categorize(BOWLING_BALL_MAX_S) == QueryCategory.WRECKING_BALL

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            categorize(-1.0)


class TestTpcdsData:
    def test_all_tables_present(self, tpcds_catalog):
        for name in TPCDS_TABLE_NAMES:
            assert name in tpcds_catalog

    def test_deterministic_generation(self):
        a = build_tpcds_catalog(scale_factor=0.05, seed=5)
        b = build_tpcds_catalog(scale_factor=0.05, seed=5)
        for name in TPCDS_TABLE_NAMES:
            col = a.table(name).column_names[0]
            assert np.array_equal(
                a.table(name).column(col), b.table(name).column(col)
            )

    def test_different_seeds_differ(self):
        a = build_tpcds_catalog(scale_factor=0.05, seed=5)
        b = build_tpcds_catalog(scale_factor=0.05, seed=6)
        assert not np.array_equal(
            a.table("store_sales").column("ss_item_sk"),
            b.table("store_sales").column("ss_item_sk"),
        )

    def test_scale_factor_scales_facts_not_dates(self):
        small = build_tpcds_catalog(scale_factor=0.05, seed=5)
        large = build_tpcds_catalog(scale_factor=0.1, seed=5)
        assert (
            large.table("store_sales").n_rows
            == 2 * small.table("store_sales").n_rows
        )
        assert large.table("date_dim").n_rows == small.table("date_dim").n_rows

    def test_foreign_keys_valid(self, tpcds_catalog):
        sales = tpcds_catalog.table("store_sales")
        n_items = tpcds_catalog.table("item").n_rows
        n_dates = tpcds_catalog.table("date_dim").n_rows
        item_sk = sales.column("ss_item_sk")
        date_sk = sales.column("ss_sold_date_sk")
        assert item_sk.min() >= 1 and item_sk.max() <= n_items
        assert date_sk.min() >= 1 and date_sk.max() <= n_dates

    def test_item_popularity_is_skewed(self, tpcds_catalog):
        """Zipfian item popularity: the hottest item is far above average."""
        item_sk = tpcds_catalog.table("store_sales").column("ss_item_sk")
        counts = np.bincount(item_sk)
        assert counts.max() > 5 * counts[counts > 0].mean()

    def test_returns_reference_real_sales(self, tpcds_catalog):
        """Every (item, customer) in store_returns appears in store_sales."""
        sales = tpcds_catalog.table("store_sales")
        returns = tpcds_catalog.table("store_returns")
        sale_pairs = set(
            zip(
                sales.column("ss_item_sk").tolist(),
                sales.column("ss_customer_sk").tolist(),
            )
        )
        return_pairs = set(
            zip(
                returns.column("sr_item_sk").tolist(),
                returns.column("sr_customer_sk").tolist(),
            )
        )
        assert return_pairs <= sale_pairs


class TestTemplates:
    def test_unique_names(self):
        templates = tpcds_templates() + problem_templates()
        names = [t.name for t in templates]
        assert len(names) == len(set(names))

    def test_families(self):
        assert all(t.family == "standard" for t in tpcds_templates())
        assert all(t.family == "problem" for t in problem_templates())

    @pytest.mark.parametrize(
        "template", tpcds_templates() + problem_templates(),
        ids=lambda t: t.name,
    )
    def test_every_template_plans_and_executes(
        self, template, tpcds_catalog, optimizer, executor
    ):
        """Each template must render, parse, plan and execute."""
        rng = child_generator(77, template.name)
        sql, params = template.render(rng)
        assert params
        optimized = optimizer.optimize(sql)
        result = executor.execute(optimized.plan)
        assert result.metrics.elapsed_time > 0
        assert result.metrics.records_accessed > 0

    def test_render_is_deterministic_per_rng(self):
        template = tpcds_templates()[0]
        sql1, _ = template.render(child_generator(1, "x"))
        sql2, _ = template.render(child_generator(1, "x"))
        assert sql1 == sql2

    def test_same_template_different_constants(self):
        template = tpcds_templates()[0]
        rng = child_generator(1, "y")
        rendered = {template.render(rng)[0] for _ in range(10)}
        assert len(rendered) > 1


class TestGeneratePool:
    def test_pool_size_and_ids_unique(self):
        pool = generate_pool(50, seed=3)
        assert len(pool) == 50
        assert len({q.query_id for q in pool}) == 50

    def test_deterministic(self):
        a = generate_pool(30, seed=3)
        b = generate_pool(30, seed=3)
        assert [q.sql for q in a] == [q.sql for q in b]

    def test_problem_fraction_zero(self):
        pool = generate_pool(40, seed=3, problem_fraction=0.0)
        assert all(q.family == "standard" for q in pool)

    def test_problem_fraction_one(self):
        pool = generate_pool(40, seed=3, problem_fraction=1.0)
        assert all(q.family == "problem" for q in pool)

    def test_explicit_template_list(self):
        pool = generate_pool(20, seed=3, templates=customer_templates())
        names = {t.name for t in customer_templates()}
        assert all(q.template in names for q in pool)


class TestCustomerWorkload:
    def test_tables_present(self, customer_catalog):
        for name in CUSTOMER_TABLE_NAMES:
            assert name in customer_catalog

    def test_schema_disjoint_from_tpcds(self, tpcds_catalog, customer_catalog):
        assert not set(customer_catalog.table_names) & set(
            tpcds_catalog.table_names
        )

    @pytest.mark.parametrize(
        "template", customer_templates(), ids=lambda t: t.name
    )
    def test_customer_templates_execute(self, template, customer_catalog):
        config = research_4node()
        optimizer = Optimizer(customer_catalog, config)
        executor = Executor(customer_catalog, config)
        sql, _params = template.render(child_generator(5, template.name))
        result = executor.execute(optimizer.optimize(sql).plan)
        assert result.metrics.elapsed_time > 0

    def test_customer_queries_are_short(self, customer_catalog):
        """The paper's customer workload was all mini-feathers."""
        config = research_4node()
        optimizer = Optimizer(customer_catalog, config)
        executor = Executor(customer_catalog, config)
        pool = generate_pool(16, seed=2, templates=customer_templates())
        for query in pool:
            result = executor.execute(optimizer.optimize(query.sql).plan)
            assert categorize(result.metrics.elapsed_time) == QueryCategory.FEATHER
