"""Property-based fuzzing: random queries, engine vs reference oracle.

Hypothesis generates random (but valid) queries over a tiny schema; each
must produce identical results from the optimizing engine and from the
exponential-time reference evaluator.
"""

import math

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.engine import Executor
from repro.engine.system import research_4node
from repro.optimizer import Optimizer
from repro.sql.parser import parse
from repro.storage.catalog import Catalog
from repro.storage.table import Column, Schema, Table

from tests._reference import run_reference

N_LEFT = 25
N_RIGHT = 12


def _build():
    rng = np.random.default_rng(7)
    left = Table(
        "fuzz_left",
        Schema(
            [
                Column("a", "int"),
                Column("b", "int"),
                Column("v", "float"),
                Column("s", "str"),
            ]
        ),
        {
            "a": rng.integers(0, 6, N_LEFT),
            "b": rng.integers(0, 4, N_LEFT),
            "v": np.round(rng.uniform(0, 10, N_LEFT), 2),
            "s": rng.choice(["x", "y", "z"], N_LEFT),
        },
    )
    right = Table(
        "fuzz_right",
        Schema([Column("a", "int"), Column("w", "float")]),
        {
            "a": rng.integers(0, 6, N_RIGHT),
            "w": np.round(rng.uniform(0, 5, N_RIGHT), 2),
        },
    )
    catalog = Catalog()
    catalog.register_all([left, right])
    tables = {
        name: [
            {
                col: catalog.table(name).column(col)[i].item()
                for col in catalog.table(name).column_names
            }
            for i in range(catalog.table(name).n_rows)
        ]
        for name in ("fuzz_left", "fuzz_right")
    }
    config = research_4node()
    return Optimizer(catalog, config), Executor(catalog, config), tables


_OPTIMIZER, _EXECUTOR, _TABLES = _build()

comparison = st.sampled_from(["=", "<>", "<", "<=", ">", ">="])
int_column = st.sampled_from(["l.a", "l.b"])
number = st.integers(min_value=-1, max_value=7)


@st.composite
def predicates(draw):
    kind = draw(st.sampled_from(["cmp", "between", "in", "like", "and", "or"]))
    if kind == "cmp":
        return f"{draw(int_column)} {draw(comparison)} {draw(number)}"
    if kind == "between":
        low = draw(number)
        return f"{draw(int_column)} BETWEEN {low} AND {low + draw(st.integers(0, 5))}"
    if kind == "in":
        values = draw(st.lists(number, min_size=1, max_size=4))
        return f"{draw(int_column)} IN ({', '.join(map(str, values))})"
    if kind == "like":
        pattern = draw(st.sampled_from(["x", "y%", "%z", "_"]))
        return f"l.s LIKE '{pattern}'"
    left = draw(st.sampled_from(["l.a > 2", "l.b = 1", "l.v < 5"]))
    right = draw(st.sampled_from(["l.a < 5", "l.s = 'x'", "l.v >= 2"]))
    op = "AND" if kind == "and" else "OR"
    return f"({left} {op} {right})"


@st.composite
def queries(draw):
    join = draw(st.booleans())
    group = draw(st.booleans())
    where = draw(predicates())
    if join:
        from_clause = "fuzz_left l, fuzz_right r"
        where = f"l.a = r.a AND {where}"
    else:
        from_clause = "fuzz_left l"
    if group:
        select = "l.b, count(*) AS c, sum(l.v) AS sv"
        tail = " GROUP BY l.b"
    else:
        select = "l.a, l.v"
        tail = ""
    return f"SELECT {select} FROM {from_clause} WHERE {where}{tail}"


def _normalise(rows):
    out = []
    for row in rows:
        canonical = []
        for value in row:
            if isinstance(value, (float, np.floating)):
                canonical.append(
                    "nan" if math.isnan(float(value)) else round(float(value), 6)
                )
            elif isinstance(value, (int, np.integer)):
                canonical.append(round(float(value), 6))
            else:
                canonical.append(str(value))
        out.append(tuple(canonical))
    return sorted(out)


@given(queries())
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_queries_match_reference(sql):
    optimized = _OPTIMIZER.optimize(sql)
    result = _EXECUTOR.execute(optimized.plan)
    got = _normalise(
        [
            tuple(col[i].item() if hasattr(col[i], "item") else col[i]
                  for col in result.batch.columns.values())
            for i in range(result.batch.n_rows)
        ]
    )
    expected = _normalise(run_reference(parse(sql), _TABLES))
    assert got == expected


@given(queries())
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
def test_random_queries_metrics_invariants(sql):
    optimized = _OPTIMIZER.optimize(sql)
    metrics = _EXECUTOR.execute(optimized.plan).metrics
    assert metrics.elapsed_time > 0
    assert metrics.records_used <= metrics.records_accessed
    assert (metrics.as_vector() >= 0).all()
    assert optimized.cost > 0
