"""System-sizing helper tests (paper use cases 2 and 3)."""

import pytest

from repro.engine.system import production_32node
from repro.errors import ReproError
from repro.sizing import size_system
from repro.workloads.generator import generate_pool
from repro.workloads.templates import tpcds_templates


@pytest.fixture(scope="module")
def sizing_inputs(tpcds_catalog):
    training = generate_pool(60, seed=8, templates=tpcds_templates())
    workload = [
        q.sql
        for q in generate_pool(10, seed=88, templates=tpcds_templates())
    ]
    return tpcds_catalog, training, workload


class TestSizeSystem:
    def test_forecast_per_candidate(self, sizing_inputs):
        catalog, training, workload = sizing_inputs
        candidates = [production_32node(4), production_32node(16)]
        result = size_system(
            catalog, candidates, training, workload, deadline_s=1e9
        )
        assert len(result.forecasts) == 2
        for forecast in result.forecasts:
            assert forecast.total_elapsed_s > 0
            assert forecast.max_query_s <= forecast.total_elapsed_s

    def test_bigger_system_predicted_faster(self, sizing_inputs):
        catalog, training, workload = sizing_inputs
        result = size_system(
            catalog,
            [production_32node(4), production_32node(32)],
            training,
            workload,
            deadline_s=1e9,
        )
        small, large = result.forecasts
        assert large.total_elapsed_s < small.total_elapsed_s

    def test_recommends_cheapest_fitting(self, sizing_inputs):
        catalog, training, workload = sizing_inputs
        generous = size_system(
            catalog,
            [production_32node(4), production_32node(32)],
            training,
            workload,
            deadline_s=1e9,
        )
        assert generous.recommended is not None
        assert generous.recommended.config.n_nodes == 4

    def test_impossible_deadline_recommends_none(self, sizing_inputs):
        catalog, training, workload = sizing_inputs
        result = size_system(
            catalog,
            [production_32node(4)],
            training,
            workload,
            deadline_s=1e-6,
        )
        assert result.recommended is None
        assert not result.forecasts[0].fits_deadline

    def test_input_validation(self, sizing_inputs):
        catalog, training, workload = sizing_inputs
        with pytest.raises(ReproError):
            size_system(catalog, [], training, workload, 10.0)
        with pytest.raises(ReproError):
            size_system(
                catalog, [production_32node(4)], training, [], 10.0
            )

    def test_training_workload_generates_pool(self, sizing_inputs):
        catalog, _training, workload = sizing_inputs
        result = size_system(
            catalog,
            [production_32node(4)],
            workload=workload,
            deadline_s=1e9,
            training_workload="tpcds",
            n_training_queries=40,
        )
        assert len(result.forecasts) == 1
        assert result.forecasts[0].total_elapsed_s > 0

    def test_pool_and_workload_are_exclusive(self, sizing_inputs):
        catalog, training, workload = sizing_inputs
        with pytest.raises(ReproError, match="not both"):
            size_system(
                catalog,
                [production_32node(4)],
                training,
                workload,
                10.0,
                training_workload="tpcds",
            )
        with pytest.raises(ReproError, match="training_pool"):
            size_system(
                catalog,
                [production_32node(4)],
                workload=workload,
                deadline_s=10.0,
            )
