"""SQL-text feature vector tests (paper Section VI-D.1)."""

import numpy as np

from repro.sql.text_features import SQL_TEXT_FEATURE_NAMES, sql_text_features


def feature(sql, name):
    vector = sql_text_features(sql)
    return vector[SQL_TEXT_FEATURE_NAMES.index(name)]


class TestVectorShape:
    def test_nine_features(self):
        vector = sql_text_features("SELECT * FROM t")
        assert vector.shape == (9,)
        assert vector.dtype == np.float64

    def test_trivial_query_is_zero(self):
        assert sql_text_features("SELECT * FROM t").sum() == 0


class TestSelectionPredicates:
    def test_equality_selection(self):
        sql = "SELECT * FROM t WHERE t.a = 1"
        assert feature(sql, "equality_selections") == 1
        assert feature(sql, "nonequality_selections") == 0
        assert feature(sql, "selection_predicates") == 1

    def test_range_selection(self):
        sql = "SELECT * FROM t WHERE t.a > 1"
        assert feature(sql, "nonequality_selections") == 1

    def test_between_counts_as_nonequality(self):
        sql = "SELECT * FROM t WHERE t.a BETWEEN 1 AND 2"
        assert feature(sql, "nonequality_selections") == 1

    def test_in_list_counts_as_nonequality(self):
        sql = "SELECT * FROM t WHERE t.a IN (1, 2)"
        assert feature(sql, "nonequality_selections") == 1

    def test_like_counts_as_nonequality(self):
        sql = "SELECT * FROM t WHERE t.a LIKE 'x%'"
        assert feature(sql, "nonequality_selections") == 1

    def test_conjunction_counts_both(self):
        sql = "SELECT * FROM t WHERE t.a = 1 AND t.b < 2"
        assert feature(sql, "selection_predicates") == 2

    def test_disjunction_counts_both(self):
        sql = "SELECT * FROM t WHERE t.a = 1 OR t.b = 2"
        assert feature(sql, "equality_selections") == 2

    def test_not_descends(self):
        sql = "SELECT * FROM t WHERE NOT t.a = 1"
        assert feature(sql, "equality_selections") == 1


class TestJoinPredicates:
    def test_equijoin(self):
        sql = "SELECT * FROM a, b WHERE a.x = b.y"
        assert feature(sql, "equijoin_predicates") == 1
        assert feature(sql, "join_predicates") == 1
        assert feature(sql, "equality_selections") == 0

    def test_nonequijoin(self):
        sql = "SELECT * FROM a, b WHERE a.x < b.y"
        assert feature(sql, "nonequijoin_predicates") == 1

    def test_mixed(self):
        sql = "SELECT * FROM a, b WHERE a.x = b.y AND a.z = 3"
        assert feature(sql, "join_predicates") == 1
        assert feature(sql, "selection_predicates") == 1

    def test_same_table_comparison_is_selection(self):
        sql = "SELECT * FROM a, b WHERE a.x = a.y"
        assert feature(sql, "join_predicates") == 0
        assert feature(sql, "equality_selections") == 1


class TestSortAndAggregation:
    def test_sort_columns(self):
        sql = "SELECT a, b FROM t ORDER BY a, b DESC"
        assert feature(sql, "sort_columns") == 2

    def test_aggregation_columns(self):
        sql = "SELECT sum(a), count(*), avg(b) FROM t"
        assert feature(sql, "aggregation_columns") == 3

    def test_nested_aggregate_in_expression(self):
        sql = "SELECT sum(a) / count(*) FROM t"
        assert feature(sql, "aggregation_columns") == 2


class TestSubqueries:
    def test_in_subquery_counted(self):
        sql = "SELECT * FROM t WHERE t.a IN (SELECT b FROM u WHERE u.c = 1)"
        assert feature(sql, "nested_subqueries") == 1
        # The subquery's own selection predicate is included.
        assert feature(sql, "equality_selections") == 1

    def test_exists_counted(self):
        sql = (
            "SELECT * FROM t WHERE EXISTS "
            "(SELECT * FROM u WHERE u.x = t.y AND u.z > 2)"
        )
        assert feature(sql, "nested_subqueries") == 1
        assert feature(sql, "nonequality_selections") >= 1

    def test_identical_text_different_constants_collide(self):
        """The failure mode that makes SQL-text features weak (Sec VI-D.1):
        different constants produce identical feature vectors."""
        v1 = sql_text_features("SELECT * FROM t WHERE t.a > 1")
        v2 = sql_text_features("SELECT * FROM t WHERE t.a > 999999")
        assert np.array_equal(v1, v2)


class TestAcceptsParsedQueries:
    def test_query_object_input(self):
        from repro.sql.parser import parse

        query = parse("SELECT count(*) FROM t WHERE t.a = 1")
        vector = sql_text_features(query)
        assert vector[SQL_TEXT_FEATURE_NAMES.index("aggregation_columns")] == 1
