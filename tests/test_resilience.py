"""Chaos suite for repro.resilience: deterministic fault injection,
retry/backoff, circuit breakers, checkpointed corpus builds and the
degrading fallback chain.

Every scenario is reproducible: faults fire on schedules that are pure
functions of a seed, retries assert on their computed schedules instead
of sleeping, and breakers run on a fake clock.  The headline guarantees
— a killed build resumes *bitwise-identically*, a healthy fallback chain
is *bitwise-identical* to the plain pipeline — are asserted with
``np.array_equal``, not tolerances.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.system import research_4node
from repro.errors import (
    CheckpointError,
    CorpusBuildError,
    InjectedFault,
    ModelError,
    ParseError,
    ReproError,
    RetryExhaustedError,
)
from repro.experiments.corpus import (
    build_corpus,
    build_fingerprint,
    save_corpus,
)
from repro.obs.drift import DriftMonitor
from repro.pipeline import PredictionPipeline
from repro.resilience import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BuildJournal,
    CircuitBreaker,
    CostHeuristicPredictor,
    FallbackChain,
    FaultPlan,
    RetryPolicy,
    armed,
    armed_plan,
    corrupt_array,
    disarm,
    fault_site,
)
from repro.workloads.generator import generate_pool


@pytest.fixture(scope="module")
def small_pool():
    return generate_pool(10, seed=17)


@pytest.fixture(scope="module")
def clean_corpus(tpcds_catalog, config, small_pool):
    """The uninterrupted serial reference every chaos build must match."""
    return build_corpus(tpcds_catalog, config, small_pool, noise_seed=5)


def assert_corpora_identical(a, b):
    assert [q.query_id for q in a.queries] == [q.query_id for q in b.queries]
    assert np.array_equal(a.feature_matrix(), b.feature_matrix())
    assert np.array_equal(a.sql_feature_matrix(), b.sql_feature_matrix())
    assert np.array_equal(a.performance_matrix(), b.performance_matrix())
    assert np.array_equal(a.optimizer_costs(), b.optimizer_costs())


# ----------------------------------------------------------------------
# Fault plans
# ----------------------------------------------------------------------


class TestFaultPlan:
    def test_rate_schedule_is_deterministic(self):
        def schedule(plan):
            fired = []
            for k in range(200):
                try:
                    plan.check("site", {})
                except InjectedFault:
                    fired.append(k)
            return fired

        first = schedule(FaultPlan(seed=42).on("site", rate=0.1))
        second = schedule(FaultPlan(seed=42).on("site", rate=0.1))
        other_seed = schedule(FaultPlan(seed=43).on("site", rate=0.1))
        assert first == second
        assert first  # ~20 of 200 fire
        assert first != other_seed

    def test_explicit_calls_fire_exactly(self):
        plan = FaultPlan(seed=0).on("s", calls={2, 4})
        outcomes = []
        for _ in range(5):
            try:
                plan.check("s", {})
                outcomes.append("ok")
            except InjectedFault:
                outcomes.append("boom")
        assert outcomes == ["ok", "boom", "ok", "boom", "ok"]
        assert plan.fired["s"] == 2

    def test_match_filter_targets_context(self):
        plan = FaultPlan(seed=0).on(
            "s", calls={1, 2, 3}, match={"query_id": "q2"}
        )
        plan.check("s", {"query_id": "q1"})
        with pytest.raises(InjectedFault) as excinfo:
            plan.check("s", {"query_id": "q2"})
        assert excinfo.value.site == "s"
        assert excinfo.value.call_index == 2

    def test_disarmed_site_is_noop(self):
        disarm()
        assert armed_plan() is None
        assert fault_site("anything", query_id="q") is None

    def test_armed_context_restores_previous(self):
        outer = FaultPlan(seed=1)
        inner = FaultPlan(seed=2)
        with armed(outer):
            with armed(inner):
                assert armed_plan() is inner
            assert armed_plan() is outer
        assert armed_plan() is None

    def test_delay_mode_sleeps_and_returns(self):
        plan = FaultPlan(seed=0).on("s", mode="delay", calls={1}, delay=0.0)
        assert plan.check("s", {}) is None
        assert plan.fired["s"] == 1

    def test_corrupt_mode_returns_spec_and_nans(self):
        plan = FaultPlan(seed=0).on("s", mode="corrupt", calls={1})
        spec = plan.check("s", {})
        assert spec is not None and spec.mode == "corrupt"
        poisoned = corrupt_array(spec, np.arange(4.0))
        assert np.isnan(poisoned).all()
        clean = corrupt_array(None, np.arange(4.0))
        assert np.array_equal(clean, np.arange(4.0))

    def test_without_modes_strips_exit_faults(self):
        plan = (
            FaultPlan(seed=9)
            .on("a", mode="exit", calls={1})
            .on("a", mode="raise", calls={2})
            .on("b", mode="delay", calls={1})
        )
        stripped = plan.without_modes(("exit",))
        assert [s.mode for s in stripped.specs("a")] == ["raise"]
        assert [s.mode for s in stripped.specs("b")] == ["delay"]
        assert stripped.seed == plan.seed

    def test_plan_round_trips_through_pickle(self):
        import pickle

        plan = FaultPlan(seed=7).on("s", rate=0.5, match={"k": "v"})
        clone = pickle.loads(pickle.dumps(plan))
        assert clone.seed == 7
        assert clone.specs("s")[0].match == {"k": "v"}

    def test_bad_mode_and_rate_rejected(self):
        with pytest.raises(ReproError):
            FaultPlan().on("s", mode="explode")
        with pytest.raises(ReproError):
            FaultPlan().on("s", rate=1.5)


# ----------------------------------------------------------------------
# Retry policy
# ----------------------------------------------------------------------


class TestRetryPolicy:
    def test_schedule_is_deterministic_and_bounded(self):
        policy = RetryPolicy(
            max_attempts=4, base_delay=0.05, multiplier=2.0,
            max_delay=0.15, jitter=0.1, seed=11,
        )
        schedule = policy.schedule("label")
        assert schedule == policy.schedule("label")
        assert len(schedule) == 3
        for attempt, delay in enumerate(schedule, start=1):
            raw = min(0.05 * 2.0 ** (attempt - 1), 0.15)
            assert raw * 0.9 <= delay <= raw * 1.1
        assert schedule != policy.schedule("other-label")

    def test_retries_then_succeeds(self):
        sleeps = []
        policy = RetryPolicy(
            max_attempts=3, base_delay=0.01, jitter=0.0, sleep=sleeps.append
        )
        attempts = []

        def flaky():
            attempts.append(1)
            if len(attempts) < 3:
                raise InjectedFault("transient")
            return "done"

        assert policy.call(flaky, label="x") == "done"
        assert len(attempts) == 3
        assert sleeps == policy.schedule("x")

    def test_exhaustion_raises_with_chain(self):
        policy = RetryPolicy(
            max_attempts=2, base_delay=0.0, jitter=0.0, sleep=lambda _: None
        )

        def always_fails():
            raise InjectedFault("nope")

        with pytest.raises(RetryExhaustedError) as excinfo:
            policy.call(always_fails, label="doomed")
        assert excinfo.value.attempts == 2
        assert isinstance(excinfo.value.last_error, InjectedFault)

    def test_allowlist_propagates_logic_errors(self):
        policy = RetryPolicy(max_attempts=5, sleep=lambda _: None)
        calls = []

        def parse_error():
            calls.append(1)
            raise ParseError("syntax")

        with pytest.raises(ParseError):
            policy.call(parse_error)
        assert len(calls) == 1  # never retried

    def test_total_deadline_stops_early(self):
        policy = RetryPolicy(
            max_attempts=10, base_delay=100.0, jitter=0.0,
            deadline=1.0, sleep=lambda _: None,
        )
        with pytest.raises(RetryExhaustedError) as excinfo:
            policy.call(lambda: (_ for _ in ()).throw(InjectedFault("x")))
        assert "deadline" in str(excinfo.value)

    def test_invalid_configs_rejected(self):
        with pytest.raises(ReproError):
            RetryPolicy(max_attempts=0)
        with pytest.raises(ReproError):
            RetryPolicy(jitter=1.0)
        with pytest.raises(ReproError):
            RetryPolicy(multiplier=0.5)


# ----------------------------------------------------------------------
# Circuit breaker
# ----------------------------------------------------------------------


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def test_trips_after_threshold_then_recovers(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "b", failure_threshold=3, reset_timeout=10.0, clock=clock
        )
        assert breaker.state == CLOSED
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == CLOSED
        breaker.record_failure()
        assert breaker.state == OPEN
        assert not breaker.allow()

        clock.advance(9.9)
        assert breaker.state == OPEN
        clock.advance(0.2)
        assert breaker.state == HALF_OPEN
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == CLOSED
        assert breaker.trip_reason is None

    def test_half_open_failure_reopens(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "b", failure_threshold=1, reset_timeout=5.0, clock=clock
        )
        breaker.record_failure("first")
        clock.advance(5.0)
        assert breaker.state == HALF_OPEN
        breaker.record_failure("probe died")
        assert breaker.state == OPEN
        assert breaker.open_count == 2
        assert breaker.trip_reason == "probe died"

    def test_success_resets_failure_streak(self):
        breaker = CircuitBreaker("b", failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == CLOSED  # streak broken, never reached 2

    def test_force_open_is_idempotent_while_open(self):
        clock = FakeClock()
        breaker = CircuitBreaker("b", reset_timeout=10.0, clock=clock)
        breaker.force_open("drift")
        opened = breaker.open_count
        clock.advance(6.0)
        # A recurring external signal must not push the reset timer back.
        breaker.force_open("drift again")
        assert breaker.open_count == opened
        clock.advance(4.0)
        assert breaker.state == HALF_OPEN

    def test_multi_probe_close(self):
        clock = FakeClock()
        breaker = CircuitBreaker(
            "b", failure_threshold=1, reset_timeout=1.0,
            half_open_successes=2, clock=clock,
        )
        breaker.record_failure()
        clock.advance(1.0)
        breaker.record_success()
        assert breaker.state == HALF_OPEN
        breaker.record_success()
        assert breaker.state == CLOSED


# ----------------------------------------------------------------------
# Build journal
# ----------------------------------------------------------------------


class TestBuildJournal:
    def test_record_replay_round_trip(self, tmp_path):
        path = tmp_path / "j.journal"
        with BuildJournal(path, "fp") as journal:
            journal.record("a", {"x": 0.1})
            journal.record("b", {"x": [1.5, float(np.float64(1) / 3)]})
        replayed = BuildJournal(path, "fp").replay()
        assert replayed["a"] == {"x": 0.1}
        assert replayed["b"]["x"][1] == float(np.float64(1) / 3)  # bit-exact

    def test_missing_journal_replays_empty(self, tmp_path):
        assert BuildJournal(tmp_path / "none", "fp").replay() == {}

    def test_fingerprint_mismatch_refused(self, tmp_path):
        path = tmp_path / "j.journal"
        with BuildJournal(path, "build-one") as journal:
            journal.record("a", {})
        with pytest.raises(CheckpointError, match="different build"):
            BuildJournal(path, "build-two").replay()

    def test_torn_tail_is_discarded(self, tmp_path):
        path = tmp_path / "j.journal"
        with BuildJournal(path, "fp") as journal:
            journal.record("a", {"x": 1})
            journal.record("b", {"x": 2})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"id": "c", "payl')  # crash mid-append
        replayed = BuildJournal(path, "fp").replay()
        assert set(replayed) == {"a", "b"}

    def test_mid_file_corruption_refused(self, tmp_path):
        path = tmp_path / "j.journal"
        with BuildJournal(path, "fp") as journal:
            journal.record("a", {"x": 1})
            journal.record("b", {"x": 2})
        lines = path.read_text().splitlines()
        lines[1] = "garbage"
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(CheckpointError, match="corrupt"):
            BuildJournal(path, "fp").replay()

    def test_discard_removes_file(self, tmp_path):
        path = tmp_path / "j.journal"
        journal = BuildJournal(path, "fp")
        journal.record("a", {})
        journal.discard()
        assert not path.exists()


# ----------------------------------------------------------------------
# Resilient corpus builds
# ----------------------------------------------------------------------


class TestResilientCorpusBuild:
    def test_checkpointed_build_matches_plain(
        self, tpcds_catalog, config, small_pool, clean_corpus, tmp_path
    ):
        checkpointed = build_corpus(
            tpcds_catalog, config, small_pool, noise_seed=5,
            checkpoint=tmp_path / "ck.journal",
        )
        assert not (tmp_path / "ck.journal").exists()
        assert_corpora_identical(clean_corpus, checkpointed)

    def test_killed_build_resumes_bitwise_identically(
        self, tpcds_catalog, config, small_pool, clean_corpus, tmp_path
    ):
        checkpoint = tmp_path / "resume.journal"
        plan = FaultPlan(seed=3).on("corpus.execute", mode="raise", calls={7})
        with armed(plan):
            with pytest.raises(InjectedFault):
                build_corpus(
                    tpcds_catalog, config, small_pool, noise_seed=5,
                    checkpoint=checkpoint,
                )
        assert checkpoint.exists()  # journal survives the crash
        completed = BuildJournal(
            checkpoint,
            build_fingerprint(config, small_pool, 5),
        ).replay()
        assert len(completed) == 6  # queries 1-6 landed before the kill

        resumed = build_corpus(
            tpcds_catalog, config, small_pool, noise_seed=5,
            checkpoint=checkpoint,
        )
        assert not checkpoint.exists()
        assert_corpora_identical(clean_corpus, resumed)

    def test_checkpoint_of_other_pool_refused(
        self, tpcds_catalog, config, small_pool, tmp_path
    ):
        checkpoint = tmp_path / "ck.journal"
        plan = FaultPlan(seed=3).on("corpus.execute", mode="raise", calls={4})
        with armed(plan):
            with pytest.raises(InjectedFault):
                build_corpus(
                    tpcds_catalog, config, small_pool, noise_seed=5,
                    checkpoint=checkpoint,
                )
        other_pool = generate_pool(10, seed=99)
        with pytest.raises(CheckpointError):
            build_corpus(
                tpcds_catalog, config, other_pool, noise_seed=5,
                checkpoint=checkpoint,
            )

    def test_serial_retry_absorbs_transient_faults(
        self, tpcds_catalog, config, small_pool, clean_corpus
    ):
        plan = FaultPlan(seed=3).on(
            "corpus.execute", mode="raise", calls={2, 6}
        )
        retry = RetryPolicy(
            max_attempts=3, base_delay=0.0, jitter=0.0, sleep=lambda _: None
        )
        with armed(plan):
            rebuilt = build_corpus(
                tpcds_catalog, config, small_pool, noise_seed=5, retry=retry
            )
        assert plan.fired["corpus.execute"] == 2
        assert_corpora_identical(clean_corpus, rebuilt)

    def test_serial_retry_exhaustion_propagates(
        self, tpcds_catalog, config, small_pool
    ):
        plan = FaultPlan(seed=3).on("corpus.execute", mode="raise", rate=1.0)
        retry = RetryPolicy(
            max_attempts=2, base_delay=0.0, jitter=0.0, sleep=lambda _: None
        )
        with armed(plan):
            with pytest.raises(RetryExhaustedError):
                build_corpus(
                    tpcds_catalog, config, small_pool, noise_seed=5,
                    retry=retry,
                )


class TestParallelResilience:
    def test_plain_parallel_crash_names_query(
        self, tpcds_catalog, config, small_pool
    ):
        target = small_pool[3].query_id
        plan = FaultPlan(seed=3).on(
            "corpus.execute", mode="exit",
            calls=set(range(1, len(small_pool) + 1)),
            match={"query_id": target},
        )
        with armed(plan):
            with pytest.raises(CorpusBuildError) as excinfo:
                build_corpus(
                    tpcds_catalog, config, small_pool, noise_seed=5, jobs=2
                )
        assert excinfo.value.query_id is not None
        assert "retry=RetryPolicy" in str(excinfo.value)

    def test_pool_rebuild_absorbs_worker_crash(
        self, tpcds_catalog, config, small_pool, clean_corpus
    ):
        target = small_pool[4].query_id
        plan = FaultPlan(seed=3).on(
            "corpus.execute", mode="exit",
            calls=set(range(1, len(small_pool) + 1)),
            match={"query_id": target},
        )
        retry = RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0)
        with armed(plan):
            rebuilt = build_corpus(
                tpcds_catalog, config, small_pool, noise_seed=5, jobs=2,
                retry=retry,
            )
        assert_corpora_identical(clean_corpus, rebuilt)

    def test_parallel_checkpoint_matches_plain(
        self, tpcds_catalog, config, small_pool, clean_corpus, tmp_path
    ):
        rebuilt = build_corpus(
            tpcds_catalog, config, small_pool, noise_seed=5, jobs=2,
            checkpoint=tmp_path / "par.journal",
        )
        assert not (tmp_path / "par.journal").exists()
        assert_corpora_identical(clean_corpus, rebuilt)


# ----------------------------------------------------------------------
# Fallback chain
# ----------------------------------------------------------------------


@pytest.fixture(scope="module")
def fitted_chain(mini_corpus):
    chain = FallbackChain(breaker_failures=3, breaker_reset_seconds=30.0)
    chain.fit_with_costs(
        mini_corpus.feature_matrix(),
        mini_corpus.performance_matrix(),
        mini_corpus.optimizer_costs(),
    )
    return chain


class TestFallbackChain:
    def test_healthy_chain_serves_primary_identically(self, mini_corpus):
        features = mini_corpus.feature_matrix()
        performance = mini_corpus.performance_matrix()
        costs = mini_corpus.optimizer_costs()

        plain = PredictionPipeline()
        plain.fit(features, performance, costs)
        chained = PredictionPipeline(model=FallbackChain())
        chained.fit(features, performance, costs)

        scored_plain = plain.score_many(features[:8])
        scored_chain = chained.score_many(features[:8], costs[:8])
        for a, b in zip(scored_plain, scored_chain):
            assert np.array_equal(a.prediction, b.prediction)
            assert a.confidence.zscore == b.confidence.zscore
            assert a.stage is None
            assert b.stage == "kcca"

    def test_failover_to_regression_is_nonnegative(self, fitted_chain):
        features = np.atleast_2d(
            np.full(32, 100.0)
        )  # any features; stage choice is what matters
        plan = FaultPlan(seed=1).on("fallback.kcca", mode="raise", rate=1.0)
        with armed(plan):
            predictions, stage, details = fitted_chain.predict_labeled(
                features
            )
        assert stage == "regression"
        assert details is None
        assert (predictions >= 0.0).all()
        fitted_chain.breaker("kcca").reset()

    def test_breaker_trips_then_probes_then_closes(self, mini_corpus):
        clock = FakeClock()
        chain = FallbackChain(
            breaker_failures=2, breaker_reset_seconds=10.0, clock=clock
        )
        chain.fit_with_costs(
            mini_corpus.feature_matrix(),
            mini_corpus.performance_matrix(),
            mini_corpus.optimizer_costs(),
        )
        features = mini_corpus.feature_matrix()[:2]
        plan = FaultPlan(seed=1).on("fallback.kcca", mode="raise", rate=1.0)
        with armed(plan):
            for _ in range(2):
                _, stage, _ = chain.predict_labeled(features)
                assert stage == "regression"
            assert chain.breaker("kcca").state == OPEN
            # While open, kcca is skipped without paying for the call.
            fired_before = plan.fired.get("fallback.kcca", 0)
            _, stage, _ = chain.predict_labeled(features)
            assert stage == "regression"
            assert plan.fired.get("fallback.kcca", 0) == fired_before

        # Faults cleared; after the reset timeout the half-open probe
        # succeeds and the breaker closes again.
        clock.advance(10.0)
        assert chain.breaker("kcca").state == HALF_OPEN
        _, stage, _ = chain.predict_labeled(features)
        assert stage == "kcca"
        assert chain.breaker("kcca").state == CLOSED

    def test_drift_monitor_forces_failover(self, mini_corpus):
        clock = FakeClock()
        chain = FallbackChain(clock=clock)
        chain.fit_with_costs(
            mini_corpus.feature_matrix(),
            mini_corpus.performance_matrix(),
            mini_corpus.optimizer_costs(),
        )
        monitor = DriftMonitor(
            floor=0.85, tolerance=0.2, window=4, min_samples=4
        )
        chain.set_monitor(monitor)
        features = mini_corpus.feature_matrix()[:2]
        _, stage, _ = chain.predict_labeled(features)
        assert stage == "kcca"

        width = len(monitor.metric_names)
        for _ in range(4):  # feed wildly wrong predictions: drift trips
            monitor.record(np.full(width, 1.0), np.full(width, 500.0))
        assert monitor.degraded
        _, stage, _ = chain.predict_labeled(features)
        assert stage == "regression"
        assert chain.status()["drift_degraded"] is True

    def test_all_stages_down_raises_model_error(self, fitted_chain):
        plan = (
            FaultPlan(seed=1)
            .on("fallback.kcca", mode="raise", rate=1.0)
            .on("fallback.regression", mode="raise", rate=1.0)
            .on("fallback.heuristic", mode="raise", rate=1.0)
        )
        features = np.atleast_2d(np.full(32, 10.0))
        with armed(plan):
            with pytest.raises(ModelError, match="every fallback stage"):
                fitted_chain.predict_labeled(features)
        for name in ("kcca", "regression", "heuristic"):
            fitted_chain.breaker(name).reset()

    def test_heuristic_scales_profile_by_cost(self, mini_corpus):
        heuristic = CostHeuristicPredictor()
        heuristic.fit(
            mini_corpus.feature_matrix(), mini_corpus.performance_matrix()
        )
        costs = mini_corpus.optimizer_costs()
        heuristic.fit_costs(costs, mini_corpus.elapsed_times())
        cheap, expensive = np.percentile(costs, [10, 90])
        predictions = heuristic.predict(
            np.zeros((2, 3)), optimizer_costs=[cheap, expensive]
        )
        assert predictions.shape[0] == 2
        assert predictions[1, 0] > predictions[0, 0]  # costlier -> slower

    def test_chain_state_round_trips(self, fitted_chain, tmp_path):
        path = tmp_path / "chain.npz"
        fitted_chain.save(path)
        loaded = FallbackChain.load(path)
        features = np.atleast_2d(np.full(32, 50.0))
        assert np.array_equal(
            fitted_chain.predict(features), loaded.predict(features)
        )
        assert loaded.breaker("kcca").state == CLOSED


# ----------------------------------------------------------------------
# Atomic artifact writes
# ----------------------------------------------------------------------


class TestAtomicArtifacts:
    def test_failed_write_preserves_previous_artifact(
        self, mini_corpus, tmp_path
    ):
        features = mini_corpus.feature_matrix()
        performance = mini_corpus.performance_matrix()
        pipeline = PredictionPipeline()
        pipeline.fit(features, performance, mini_corpus.optimizer_costs())
        path = tmp_path / "model.npz"
        pipeline.save(path)
        before = path.read_bytes()

        plan = FaultPlan(seed=1).on("artifact.write", mode="raise", rate=1.0)
        with armed(plan):
            with pytest.raises(InjectedFault):
                pipeline.save(path)
        assert path.read_bytes() == before  # old artifact untouched
        assert not list(tmp_path.glob("*.tmp*"))  # no temp litter

        reloaded = PredictionPipeline.load(path)
        assert np.array_equal(
            pipeline.predict(features[:3]), reloaded.predict(features[:3])
        )

    def test_read_fault_site_is_armed(self, mini_corpus, tmp_path):
        pipeline = PredictionPipeline()
        pipeline.fit(
            mini_corpus.feature_matrix(), mini_corpus.performance_matrix()
        )
        path = tmp_path / "model.npz"
        pipeline.save(path)
        plan = FaultPlan(seed=1).on("artifact.read", mode="raise", rate=1.0)
        with armed(plan):
            with pytest.raises(InjectedFault):
                PredictionPipeline.load(path)

    def test_save_corpus_is_atomic(self, clean_corpus, tmp_path):
        from repro.experiments.corpus import load_corpus

        path = tmp_path / "corpus.npz"
        save_corpus(clean_corpus, path)
        reloaded = load_corpus(path)
        assert_corpora_identical(clean_corpus, reloaded)
        assert not list(tmp_path.glob("*.tmp*"))


# ----------------------------------------------------------------------
# The off-by-default contract
# ----------------------------------------------------------------------


class TestOffByDefault:
    def test_disarmed_sites_leave_corpus_unchanged(
        self, tpcds_catalog, config, small_pool, clean_corpus
    ):
        disarm()
        rebuilt = build_corpus(tpcds_catalog, config, small_pool, noise_seed=5)
        assert_corpora_identical(clean_corpus, rebuilt)

    def test_corrupt_fault_poisons_measurements(
        self, tpcds_catalog, config, small_pool
    ):
        plan = FaultPlan(seed=3).on(
            "corpus.execute", mode="corrupt", calls={2}
        )
        with armed(plan):
            corpus = build_corpus(
                tpcds_catalog, config, small_pool, noise_seed=5
            )
        performance = corpus.performance_matrix()
        assert np.isnan(performance[1]).all()  # the corrupted query
        assert np.isfinite(performance[0]).all()
        assert np.isfinite(performance[2:]).all()
