"""CLI tests (plan / measure / predict / explain / pools)."""

import pytest

from repro.cli import build_parser, main

SQL = "SELECT count(*) AS c FROM store_sales ss WHERE ss.ss_quantity > 20"


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_args(self):
        args = build_parser().parse_args(["plan", SQL])
        assert args.command == "plan"
        assert args.sql == SQL

    def test_system_choices(self):
        args = build_parser().parse_args(["--system", "prod8", "plan", SQL])
        assert args.system == "prod8"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--system", "prod5", "plan", SQL])


class TestCommands:
    def test_plan_prints_tree(self, capsys):
        code = main(["--scale", "0.05", "plan", SQL])
        out = capsys.readouterr().out
        assert code == 0
        assert "file_scan" in out
        assert "optimizer cost" in out

    def test_measure_prints_metrics(self, capsys):
        code = main(["--scale", "0.05", "measure", SQL])
        out = capsys.readouterr().out
        assert code == 0
        assert "elapsed time" in out
        assert "records accessed" in out

    def test_predict_trains_and_forecasts(self, capsys):
        code = main(
            ["--scale", "0.05", "predict", "--queries", "50", SQL]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "predicted elapsed time" in out

    def test_explain_includes_confidence(self, capsys):
        code = main(
            ["--scale", "0.05", "explain", "--queries", "50", SQL]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "confidence" in out

    def test_pools_table(self, capsys):
        code = main(["--scale", "0.05", "pools", "--queries", "40"])
        out = capsys.readouterr().out
        assert code == 0
        assert "feather" in out

    def test_bad_sql_fails_cleanly(self, capsys):
        code = main(["--scale", "0.05", "plan", "SELECT * FROM no_table x"])
        err = capsys.readouterr().err
        assert code == 1
        assert "error" in err

    def test_production_system(self, capsys):
        code = main(["--scale", "0.05", "--system", "prod8", "measure", SQL])
        assert code == 0
