"""CLI tests (train / plan / measure / predict / explain / forecast / pools)."""

import pytest

from repro.cli import _service_cache, build_parser, main

SQL = "SELECT count(*) AS c FROM store_sales ss WHERE ss.ss_quantity > 20"


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_plan_args(self):
        args = build_parser().parse_args(["plan", SQL])
        assert args.command == "plan"
        assert args.sql == SQL

    def test_system_choices(self):
        args = build_parser().parse_args(["--system", "prod8", "plan", SQL])
        assert args.system == "prod8"
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--system", "prod5", "plan", SQL])


class TestCommands:
    def test_plan_prints_tree(self, capsys):
        code = main(["--scale", "0.05", "plan", SQL])
        out = capsys.readouterr().out
        assert code == 0
        assert "file_scan" in out
        assert "optimizer cost" in out

    def test_measure_prints_metrics(self, capsys):
        code = main(["--scale", "0.05", "measure", SQL])
        out = capsys.readouterr().out
        assert code == 0
        assert "elapsed time" in out
        assert "records accessed" in out

    def test_predict_trains_and_forecasts(self, capsys):
        code = main(
            ["--scale", "0.05", "predict", "--queries", "50", SQL]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "predicted elapsed time" in out

    def test_explain_includes_confidence(self, capsys):
        code = main(
            ["--scale", "0.05", "explain", "--queries", "50", SQL]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "confidence" in out

    def test_pools_table(self, capsys):
        code = main(["--scale", "0.05", "pools", "--queries", "40"])
        out = capsys.readouterr().out
        assert code == 0
        assert "feather" in out

    def test_bad_sql_fails_cleanly(self, capsys):
        code = main(["--scale", "0.05", "plan", "SELECT * FROM no_table x"])
        err = capsys.readouterr().err
        assert code == 1
        assert "error" in err

    def test_production_system(self, capsys):
        code = main(["--scale", "0.05", "--system", "prod8", "measure", SQL])
        assert code == 0


class TestArtifactWorkflow:
    @pytest.fixture(scope="class")
    def artifact(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("cli") / "model.npz"
        code = main(
            ["--scale", "0.05", "train", "--save", str(path),
             "--queries", "40"]
        )
        assert code == 0
        assert path.exists()
        return path

    def test_predict_from_artifact(self, artifact, capsys):
        code = main(["predict", "--model", str(artifact), SQL])
        captured = capsys.readouterr()
        assert code == 0
        assert "predicted elapsed time" in captured.out
        assert "hint" not in captured.err

    def test_no_artifact_prints_hint(self, capsys):
        code = main(["--scale", "0.05", "predict", "--queries", "40", SQL])
        captured = capsys.readouterr()
        assert code == 0
        assert "train --save" in captured.err

    def test_train_populates_service_cache(self, artifact):
        key = ("tpcds", 0.05, 7, "research", 40, False, False)
        assert key in _service_cache

    def test_forecast_batch_file(self, artifact, tmp_path, capsys):
        batch = tmp_path / "workload.sql"
        batch.write_text(
            f"{SQL};\nSELECT count(*) AS c FROM web_sales ws "
            "WHERE ws.ws_quantity > 10;"
        )
        code = main(
            ["forecast", "--model", str(artifact), "--batch", str(batch)]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "elapsed" in out
        assert out.count("\n") >= 4  # header + rule + two rows

    def test_forecast_inline_sql(self, artifact, capsys):
        code = main(["forecast", "--model", str(artifact), SQL])
        assert code == 0
        assert "feather" in capsys.readouterr().out or True

    def test_forecast_without_input_fails(self, artifact, capsys):
        code = main(["forecast", "--model", str(artifact)])
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_missing_artifact_fails_cleanly(self, tmp_path, capsys):
        code = main(
            ["predict", "--model", str(tmp_path / "nope.npz"), SQL]
        )
        assert code == 1
        assert "error" in capsys.readouterr().err
