"""ConfidenceModel / ConfidenceReport tests (paper Section VII-C.3).

The confidence machinery flags queries whose projection lands far from
everything seen in training (the paper's post-OS-upgrade bowling balls).
These tests pin the calibration round-trip, the threshold semantics and
the near/far behaviour on controlled fixtures.
"""

import numpy as np
import pytest

from repro.core.confidence import (
    ConfidenceModel,
    ConfidenceReport,
    neighbor_confidence,
)
from repro.core.predictor import KCCAPredictor, PredictionDetail
from repro.errors import ModelError


def _training_data(n=60, n_features=6, n_metrics=6, seed=0):
    rng = np.random.default_rng(seed)
    features = rng.lognormal(mean=2.0, sigma=1.0, size=(n, n_features))
    weights = rng.uniform(0.3, 1.0, size=(n_features, n_metrics))
    performance = np.log1p(features) @ weights
    return features, performance


@pytest.fixture(scope="module")
def fitted_predictor():
    features, performance = _training_data()
    return KCCAPredictor(n_components=4).fit(features, performance)


def _detail(distance: float) -> PredictionDetail:
    return PredictionDetail(
        prediction=np.zeros(6),
        neighbor_indices=np.arange(3),
        neighbor_distances=np.full(3, distance),
        confidence_distance=distance,
    )


class TestThresholdSemantics:
    """assess_details against a hand-set calibration: exact z-scores."""

    def _model(self, threshold=3.0):
        # predictor is only consulted by assess(), not assess_details().
        return ConfidenceModel.from_calibration(
            predictor=None, median=1.0, scale=0.5, threshold=threshold
        )

    def test_zscore_formula(self):
        (report,) = self._model().assess_details([_detail(2.0)])
        assert isinstance(report, ConfidenceReport)
        assert report.distance == 2.0
        assert report.zscore == pytest.approx((2.0 - 1.0) / 0.5)
        assert not report.anomalous

    def test_at_threshold_not_anomalous(self):
        # z == threshold exactly: strict inequality, still ok.
        (report,) = self._model(threshold=2.0).assess_details([_detail(2.0)])
        assert report.zscore == pytest.approx(2.0)
        assert not report.anomalous

    def test_beyond_threshold_anomalous(self):
        (report,) = self._model(threshold=2.0).assess_details([_detail(2.01)])
        assert report.anomalous

    def test_below_median_negative_zscore(self):
        (report,) = self._model().assess_details([_detail(0.5)])
        assert report.zscore < 0
        assert not report.anomalous

    def test_batch_order_preserved(self):
        reports = self._model().assess_details(
            [_detail(d) for d in (0.5, 1.0, 9.0)]
        )
        assert [r.distance for r in reports] == [0.5, 1.0, 9.0]
        assert [r.anomalous for r in reports] == [False, False, True]

    def test_threshold_validated(self):
        with pytest.raises(ModelError):
            ConfidenceModel.from_calibration(
                predictor=None, median=1.0, scale=0.5, threshold=0.0
            )


class TestCalibration:
    def test_fit_time_calibration_round_trips(self, fitted_predictor):
        model = ConfidenceModel(fitted_predictor)
        median, scale = model.calibration
        assert scale > 0
        rebuilt = ConfidenceModel.from_calibration(
            fitted_predictor, median, scale, threshold=model.threshold
        )
        assert rebuilt.calibration == (median, scale)
        features, _ = _training_data(seed=1)
        original = model.assess(features[:8])
        restored = rebuilt.assess(features[:8])
        for a, b in zip(original, restored):
            assert a.distance == pytest.approx(b.distance)
            assert a.zscore == pytest.approx(b.zscore)
            assert a.anomalous == b.anomalous

    def test_invalid_threshold_on_fit_path(self, fitted_predictor):
        with pytest.raises(ModelError):
            ConfidenceModel(fitted_predictor, threshold=-1.0)


class TestNearFarFixtures:
    def test_training_points_look_ordinary(self, fitted_predictor):
        features, _ = _training_data()
        reports = ConfidenceModel(fitted_predictor).assess(features)
        # Training queries sit inside their own distance distribution:
        # the bulk must be unflagged.
        flagged = sum(r.anomalous for r in reports)
        assert flagged <= len(reports) * 0.1

    def test_far_query_scores_higher_than_near(self, fitted_predictor):
        features, _ = _training_data()
        near = features[0]
        far = features.max(axis=0) * 1e4  # way outside the training cloud
        model = ConfidenceModel(fitted_predictor)
        near_report, far_report = model.assess(np.vstack([near, far]))
        assert far_report.distance >= near_report.distance
        assert far_report.zscore >= near_report.zscore

    def test_one_shot_wrapper_matches_model(self, fitted_predictor):
        features, _ = _training_data(seed=2)
        via_wrapper = neighbor_confidence(fitted_predictor, features[:5])
        via_model = ConfidenceModel(fitted_predictor).assess(features[:5])
        for a, b in zip(via_wrapper, via_model):
            assert a == b

    def test_degenerate_identical_training_set_still_finite(self):
        # All training points identical: MAD is 0, the std fallback kicks
        # in and z-scores stay finite.
        features = np.ones((12, 4))
        performance = np.ones((12, 6))
        predictor = KCCAPredictor(n_components=2).fit(features, performance)
        model = ConfidenceModel(predictor)
        _median, scale = model.calibration
        assert scale > 0
        (report,) = model.assess(np.full((1, 4), 50.0))
        assert np.isfinite(report.zscore)
