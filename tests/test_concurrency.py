"""Pack C and the runtime sanitizer: static concurrency rules over the
fixture pairs, the tracked-lock checkers (CC101/CC102/CC103), and
thread-stress drills over the migrated serving primitives.

Static rules are linted under a virtual ``repro/serve/`` path so the
:data:`~repro.analysis.concurrency.CONCURRENCY_DIRS` scoping sees the
directory it guards; runtime tests enable the sanitizer per-test via a
fixture that resets the global store on both sides.
"""

from __future__ import annotations

import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.analysis import lint_source
from repro.analysis.concurrency import (
    CONCURRENCY_DIRS,
    CONCURRENCY_RULES,
    FACTORY_PATH,
)
from repro.analysis.findings import LINT_SCHEMA_VERSION
from repro.analysis.rules import all_rules, get
from repro.analysis.sanitizer import (
    disable_sanitizer,
    dump_sanitizer_report,
    enable_sanitizer,
    guarded_by,
    make_condition,
    make_lock,
    make_rlock,
    note_access,
    reset_sanitizer,
    sanitizer_enabled,
    sanitizer_findings,
)

FIXTURES = Path(__file__).parent / "fixtures" / "lint"
REPO_ROOT = Path(__file__).resolve().parents[1]

#: Inside the concurrency scope — where Pack C fires.
SERVE_PATH = "repro/serve/fixture.py"
#: Outside every concurrency dir — Pack C must stay silent here.
NEUTRAL_PATH = "repro/workloads/fixture.py"


def lint_fixture(name: str, relpath: str = SERVE_PATH):
    source = (FIXTURES / name).read_text(encoding="utf-8")
    return lint_source(source, relpath, CONCURRENCY_RULES)


# ----------------------------------------------------------------------
# Static Pack C: per-rule fixture pairs
# ----------------------------------------------------------------------

PAIRS = [
    ("cc001", "CC001"),
    ("cc002", "CC002"),
    ("cc003", "CC003"),
    ("cc004", "CC004"),
    ("cc005", "CC005"),
    ("cc006", "CC006"),
    ("cc007", "CC007"),
    ("cc008", "CC008"),
]


class TestPackCPairs:
    @pytest.mark.parametrize("stem,rule_id", PAIRS)
    def test_bad_fixture_flags_exactly_its_rule(self, stem, rule_id):
        findings = lint_fixture(f"{stem}_bad.py")
        assert findings, f"{stem}_bad.py produced no findings"
        assert {f.rule_id for f in findings} == {rule_id}

    @pytest.mark.parametrize("stem,rule_id", PAIRS)
    def test_ok_fixture_is_clean(self, stem, rule_id):
        assert lint_fixture(f"{stem}_ok.py") == []

    @pytest.mark.parametrize("stem,rule_id", PAIRS)
    def test_findings_carry_rule_metadata(self, stem, rule_id):
        for finding in lint_fixture(f"{stem}_bad.py"):
            info = get(finding.rule_id)
            assert finding.severity == info.severity
            assert finding.path == SERVE_PATH
            assert finding.line >= 1

    def test_cc006_is_a_warning_the_rest_are_errors(self):
        assert get("CC006").severity == "warning"
        for rule_id in ("CC001", "CC002", "CC003", "CC004", "CC005",
                        "CC007", "CC008"):
            assert get(rule_id).severity == "error"

    def test_cc003_flags_each_mutation_shape(self):
        findings = lint_fixture("cc003_bad.py")
        messages = " ".join(f.message for f in findings)
        assert len(findings) == 3
        assert "augmented assignment" in messages
        assert "store into" in messages
        assert ".pop()" in messages


class TestPackCScoping:
    @pytest.mark.parametrize("stem,rule_id", PAIRS)
    def test_silent_outside_the_concurrency_dirs(self, stem, rule_id):
        assert lint_fixture(f"{stem}_bad.py", NEUTRAL_PATH) == []

    def test_cc001_exempts_the_factory_module(self):
        assert lint_fixture("cc001_bad.py", FACTORY_PATH) == []

    def test_scope_covers_the_threaded_packages(self):
        assert "repro/serve/" in CONCURRENCY_DIRS
        assert "repro/obs/" in CONCURRENCY_DIRS
        assert "repro/resilience/" in CONCURRENCY_DIRS
        assert "repro/cli.py" in CONCURRENCY_DIRS

    def test_suppression_comment_silences_cc(self):
        source = (
            "import threading\n"
            "class W:\n"
            "    def __init__(self):\n"
            "        self.lock = threading.Lock()"
            "  # repro: allow[CC001]\n"
        )
        assert lint_source(source, SERVE_PATH, CONCURRENCY_RULES) == []

    def test_registry_knows_the_concurrency_pack(self):
        ids = {info.id for info in all_rules(pack="concurrency")}
        static = {f"CC00{i}" for i in range(1, 9)}
        runtime = {"CC101", "CC102", "CC103"}
        assert static | runtime == ids


# ----------------------------------------------------------------------
# Runtime sanitizer
# ----------------------------------------------------------------------


@pytest.fixture()
def sanitizer():
    """Enable the sanitizer with a clean store; restore on exit."""
    was_enabled = sanitizer_enabled()
    reset_sanitizer()
    enable_sanitizer()
    yield
    reset_sanitizer()
    if not was_enabled:
        disable_sanitizer()


def _in_thread(fn) -> None:
    thread = threading.Thread(target=fn)
    thread.start()
    thread.join()


def _in_two_threads(fn_a, fn_b) -> None:
    """Run both closures on threads that are alive *simultaneously*.

    Sequential short-lived threads can be handed the same
    ``threading.get_ident()`` (idents are reused), which would make the
    lockset checker's two-accessor requirement vacuous; a barrier pins
    two distinct idents.
    """
    barrier = threading.Barrier(2)

    def wrap(fn):
        def run():
            barrier.wait()
            fn()

        return run

    threads = [
        threading.Thread(target=wrap(fn_a)),
        threading.Thread(target=wrap(fn_b)),
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


def _rule_ids() -> set:
    return {f.rule_id for f in sanitizer_findings()}


class TestLockOrderGraph:
    def test_inversion_detected_with_both_names(self, sanitizer):
        a = make_lock("test.order.a")
        b = make_lock("test.order.b")

        def a_then_b():
            with a:
                with b:
                    pass

        def b_then_a():
            with b:
                with a:
                    pass

        _in_thread(a_then_b)
        _in_thread(b_then_a)
        findings = sanitizer_findings()
        assert [f.rule_id for f in findings] == ["CC101"]
        message = findings[0].message
        assert "test.order.a" in message and "test.order.b" in message
        assert "stack:" in message
        assert findings[0].severity == "error"
        assert findings[0].path == "tests/test_concurrency.py"

    def test_consistent_order_is_clean(self, sanitizer):
        a = make_lock("test.order.first")
        b = make_lock("test.order.second")
        for _ in range(3):
            with a:
                with b:
                    pass
        assert sanitizer_findings() == []

    def test_same_name_never_self_inverts(self, sanitizer):
        # Two bucket instances share one semantic name; holding one
        # while taking the other is striping, not an ordering cycle.
        left = make_lock("test.order.stripe")
        right = make_lock("test.order.stripe")
        with left:
            with right:
                pass
        with right:
            with left:
                pass
        assert sanitizer_findings() == []

    def test_inversion_reported_once(self, sanitizer):
        a = make_lock("test.order.dup_a")
        b = make_lock("test.order.dup_b")
        for _ in range(3):
            with a:
                with b:
                    pass
            with b:
                with a:
                    pass
        assert [f.rule_id for f in sanitizer_findings()] == ["CC101"]


class TestLocksetChecker:
    def test_unlocked_multithread_access_fires(self, sanitizer):
        guard = make_lock("test.eraser.guard")
        guarded_by("test.eraser.state", guard)

        def access():
            note_access("test.eraser.state")

        _in_two_threads(access, access)
        findings = sanitizer_findings()
        assert [f.rule_id for f in findings] == ["CC102"]
        assert "test.eraser.state" in findings[0].message
        assert "test.eraser.guard" in findings[0].message

    def test_locked_access_is_clean(self, sanitizer):
        guard = make_lock("test.eraser.clean_guard")
        guarded_by("test.eraser.clean", guard)

        def access():
            with guard:
                note_access("test.eraser.clean")

        _in_two_threads(access, access)
        assert sanitizer_findings() == []

    def test_single_thread_needs_no_lock(self, sanitizer):
        guarded_by("test.eraser.solo", make_lock("test.eraser.solo_guard"))
        for _ in range(5):
            note_access("test.eraser.solo")
        assert sanitizer_findings() == []

    def test_unregistered_state_is_ignored(self, sanitizer):
        def access():
            note_access("test.eraser.nobody")

        _in_two_threads(access, access)
        assert sanitizer_findings() == []

    def test_reregistration_resets_history(self, sanitizer):
        guard = make_lock("test.eraser.rebuild_guard")
        guarded_by("test.eraser.rebuild", guard)
        _in_thread(lambda: note_access("test.eraser.rebuild"))
        # A rebuilt daemon re-registers; stale bare-access history from
        # the old object must not poison the fresh candidate set.
        guarded_by("test.eraser.rebuild", guard)

        def access():
            with guard:
                note_access("test.eraser.rebuild")

        _in_two_threads(access, access)
        assert sanitizer_findings() == []

    def test_guard_accepts_the_lock_object(self, sanitizer):
        lock = make_lock("test.eraser.obj_guard")
        guarded_by("test.eraser.obj", lock)

        def access():
            note_access("test.eraser.obj")

        _in_two_threads(access, access)
        assert "test.eraser.obj_guard" in sanitizer_findings()[0].message


class TestHoldWatchdog:
    def test_long_hold_fires_cc103(self, sanitizer, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE_HOLD_MS", "10")
        lock = make_lock("test.hold.slow")
        with lock:
            time.sleep(0.03)
        findings = sanitizer_findings()
        assert [f.rule_id for f in findings] == ["CC103"]
        assert findings[0].severity == "warning"
        assert "test.hold.slow" in findings[0].message

    def test_short_hold_is_clean(self, sanitizer, monkeypatch):
        monkeypatch.setenv("REPRO_SANITIZE_HOLD_MS", "200")
        lock = make_lock("test.hold.fast")
        with lock:
            pass
        assert sanitizer_findings() == []

    def test_condition_wait_does_not_count_as_holding(
        self, sanitizer, monkeypatch
    ):
        monkeypatch.setenv("REPRO_SANITIZE_HOLD_MS", "20")
        cond = make_condition("test.hold.cond")
        with cond:
            cond.wait(timeout=0.08)  # parked, not holding
        assert sanitizer_findings() == []


class TestTrackedPrimitives:
    def test_disabled_mode_records_nothing(self, sanitizer):
        disable_sanitizer()
        a = make_lock("test.off.a")
        b = make_lock("test.off.b")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        assert sanitizer_findings() == []

    def test_rlock_reentry_is_not_an_edge(self, sanitizer):
        rlock = make_rlock("test.rlock.outer")
        other = make_lock("test.rlock.other")
        with rlock:
            with rlock:  # inner re-acquire: no new hold, no edges
                with other:
                    pass
        with rlock:
            pass
        assert sanitizer_findings() == []

    def test_locked_probe(self, sanitizer):
        lock = make_lock("test.probe.lock")
        rlock = make_rlock("test.probe.rlock")
        assert not lock.locked() and not rlock.locked()
        with lock, rlock:
            assert lock.locked() and rlock.locked()
        assert not lock.locked() and not rlock.locked()

    def test_condition_wait_for_and_notify(self, sanitizer):
        cond = make_condition("test.cond.pipe")
        ready = []

        def producer():
            time.sleep(0.01)
            with cond:
                ready.append(1)
                cond.notify_all()

        thread = threading.Thread(target=producer)
        thread.start()
        with cond:
            assert cond.wait_for(lambda: ready, timeout=2.0)
        thread.join()
        assert sanitizer_findings() == []

    def test_repr_carries_the_name(self, sanitizer):
        assert "test.repr.x" in repr(make_lock("test.repr.x"))
        assert "test.repr.c" in repr(make_condition("test.repr.c"))

    def test_dump_report_text_and_json(self, sanitizer):
        count, text = dump_sanitizer_report()
        assert count == 0 and "clean" in text
        a = make_lock("test.dump.a")
        b = make_lock("test.dump.b")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        count, payload = dump_sanitizer_report(as_json=True)
        assert count == 1
        assert payload["schema_version"] == LINT_SCHEMA_VERSION
        assert payload["findings"][0]["rule_id"] == "CC101"
        count, text = dump_sanitizer_report()
        assert "1 finding(s)" in text


# ----------------------------------------------------------------------
# Thread-stress drills over the migrated primitives (satellite 3)
# ----------------------------------------------------------------------

THREADS = 8
ROUNDS = 300


def _hammer(worker) -> None:
    barrier = threading.Barrier(THREADS)

    def run():
        barrier.wait()
        worker()

    threads = [threading.Thread(target=run) for _ in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()


class TestStressUnderSanitizer:
    def test_metrics_registry_counts_exactly(self, sanitizer):
        from repro.obs.metrics import MetricsRegistry

        registry = MetricsRegistry()

        def worker():
            for _ in range(ROUNDS):
                registry.counter("stress_total", "stress").inc()

        _hammer(worker)
        assert registry.counter("stress_total").value == THREADS * ROUNDS
        assert sanitizer_findings() == []

    def test_timed_first_call_race_is_idempotent(self, sanitizer):
        from repro.obs.metrics import (
            disable_metrics,
            enable_metrics,
            get_registry,
            reset_metrics,
            timed,
        )

        reset_metrics()
        enable_metrics()
        try:
            def worker():
                for _ in range(ROUNDS):
                    with timed("stress_latency_seconds", "stress_done"):
                        pass

            _hammer(worker)
            registry = get_registry()
            assert (
                registry.counter("stress_done").value == THREADS * ROUNDS
            )
            assert (
                registry.histogram("stress_latency_seconds").count
                == THREADS * ROUNDS
            )
        finally:
            disable_metrics()
            reset_metrics()
        assert sanitizer_findings() == []

    def test_token_bucket_never_overspends(self, sanitizer):
        from repro.serve.admission import TokenBucket

        bucket = TokenBucket(rate=0.0, burst=100.0, clock=lambda: 0.0)
        admitted = []
        admitted_lock = threading.Lock()

        def worker():
            hits = 0
            for _ in range(50):
                ok, _retry = bucket.try_charge(1.0)
                if ok:
                    hits += 1
            with admitted_lock:
                admitted.append(hits)

        _hammer(worker)
        # rate=0: exactly the initial burst is admitted, never more.
        assert sum(admitted) == 100
        assert bucket.balance() == 0.0
        assert sanitizer_findings() == []

    def test_degrade_ladder_and_stale_cache(self, sanitizer):
        from repro.serve.degrade import DegradeController, StalePredictionCache

        ladder = DegradeController(clock=lambda: 0.0)
        cache = StalePredictionCache(max_entries=32)

        def worker():
            for i in range(ROUNDS):
                ladder.evaluate(queue_depth=0)
                ladder.status()
                cache.put(f"q{i % 8}", i)
                cache.get(f"q{i % 8}")
                cache.note_served(1)

        _hammer(worker)
        assert ladder.tier == 0
        assert ladder.step_downs == 0 and ladder.step_ups == 0
        # note_served is the fix for the old bare `+=` race: the total
        # must be exact, not approximately THREADS * ROUNDS.
        assert cache.stats()["served_stale"] == THREADS * ROUNDS
        assert sanitizer_findings() == []

    def test_the_old_served_stale_race_shape_is_caught(self, sanitizer):
        # What the pre-fix daemon did: bare read-modify-write on state
        # declared lock-guarded.  The lockset checker must flag it.
        guard = make_lock("test.race.stale_guard")
        guarded_by("test.race.served_stale", guard)

        def bare_increment():
            note_access("test.race.served_stale")

        _in_two_threads(bare_increment, bare_increment)
        assert "CC102" in _rule_ids()


# ----------------------------------------------------------------------
# CLI: `repro lint --concurrency` (tentpole) and serve SIGTERM
# (satellite 1)
# ----------------------------------------------------------------------


class TestConcurrencyLintCli:
    def test_violating_tree_exits_1(self, tmp_path, capsys):
        from repro.cli import main

        package = tmp_path / "repro"
        (package / "serve").mkdir(parents=True)
        (package / "serve" / "bad.py").write_text(
            "import threading\n"
            "def build():\n"
            "    return threading.Lock()\n"
        )
        code = main(["lint", "--concurrency", str(package)])
        out = capsys.readouterr().out
        assert code == 1
        assert "CC001" in out
        assert "repro/serve/bad.py" in out

    def test_clean_tree_exits_0(self, tmp_path, capsys):
        from repro.cli import main

        package = tmp_path / "repro"
        (package / "serve").mkdir(parents=True)
        (package / "serve" / "ok.py").write_text(
            "from repro.analysis.sanitizer import make_lock\n"
            "def build():\n"
            "    return make_lock('serve.fixture.ok')\n"
        )
        code = main(["lint", "--concurrency", str(package)])
        out = capsys.readouterr().out
        assert code == 0
        assert "clean" in out

    def test_missing_tree_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        code = main(
            ["lint", "--concurrency", str(tmp_path / "nowhere")]
        )
        assert code == 2

    def test_src_repro_is_pack_c_clean(self, capsys):
        from repro.cli import main

        code = main(["lint", "--concurrency"])
        out = capsys.readouterr().out
        assert code == 0, out
        assert "clean" in out


class TestServeSigterm:
    def test_foreground_serve_drains_on_sigterm(self):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        env["PYTHONUNBUFFERED"] = "1"
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro.cli",
                "--scale", "0.05",
                "serve", "--port", "0", "--queries", "40",
            ],
            cwd=REPO_ROOT,
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        try:
            assert proc.stdout is not None
            deadline = time.monotonic() + 120.0
            banner = ""
            while time.monotonic() < deadline:
                line = proc.stdout.readline()
                if not line:
                    break
                if line.startswith("serving on"):
                    banner = line
                    break
            assert banner.startswith("serving on"), (
                "daemon never came up: " + (proc.stderr.read() or "")
            )
            proc.send_signal(signal.SIGTERM)
            code = proc.wait(timeout=60.0)
            stderr = proc.stderr.read() if proc.stderr else ""
            assert code == 0, stderr
            assert "draining and shutting down" in stderr
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=10.0)
