"""End-to-end correctness: optimizer + executor vs brute-force reference.

A tiny handcrafted database (small enough for the exponential reference
evaluator) is queried with every language feature the subset supports; the
engine's answer must match the reference's as a multiset.
"""

import math

import numpy as np
import pytest

from repro.engine import Executor
from repro.engine.system import research_4node
from repro.optimizer import Optimizer
from repro.sql.parser import parse
from repro.storage.catalog import Catalog
from repro.storage.table import Column, Schema, Table

from tests._reference import run_reference


def _rows_from_table(table):
    return [
        {name: table.column(name)[i].item() for name in table.column_names}
        for i in range(table.n_rows)
    ]


@pytest.fixture(scope="module")
def tiny_db():
    rng = np.random.default_rng(42)
    n_items, n_sales, n_custs = 12, 60, 8
    item = Table(
        "titem",
        Schema(
            [
                Column("i_id", "int"),
                Column("i_cat", "str"),
                Column("i_price", "float"),
            ]
        ),
        {
            "i_id": np.arange(1, n_items + 1),
            "i_cat": rng.choice(["red", "blue", "green"], n_items),
            "i_price": np.round(rng.uniform(1, 50, n_items), 2),
        },
    )
    cust = Table(
        "tcust",
        Schema([Column("c_id", "int"), Column("c_region", "str")]),
        {
            "c_id": np.arange(1, n_custs + 1),
            "c_region": rng.choice(["n", "s"], n_custs),
        },
    )
    sales = Table(
        "tsales",
        Schema(
            [
                Column("s_id", "int"),
                Column("s_item", "int"),
                Column("s_cust", "int"),
                Column("s_qty", "int"),
                Column("s_amt", "float"),
            ]
        ),
        {
            "s_id": np.arange(1, n_sales + 1),
            "s_item": rng.integers(1, n_items + 1, n_sales),
            "s_cust": rng.integers(1, n_custs + 1, n_sales),
            "s_qty": rng.integers(1, 10, n_sales),
            "s_amt": np.round(rng.uniform(1, 100, n_sales), 2),
        },
    )
    catalog = Catalog()
    catalog.register_all([item, cust, sales])
    tables = {
        "titem": _rows_from_table(item),
        "tcust": _rows_from_table(cust),
        "tsales": _rows_from_table(sales),
    }
    config = research_4node()
    return Optimizer(catalog, config), Executor(catalog, config), tables


def normalise(rows):
    """Multiset of rows with floats rounded for comparison."""
    out = []
    for row in rows:
        canonical = []
        for value in row:
            if isinstance(value, (float, np.floating)):
                if math.isnan(float(value)):
                    canonical.append("nan")
                else:
                    canonical.append(round(float(value), 6))
            elif isinstance(value, (int, np.integer)):
                canonical.append(round(float(value), 6))
            else:
                canonical.append(str(value))
        out.append(tuple(canonical))
    return sorted(out)


def engine_rows(optimizer, executor, sql):
    optimized = optimizer.optimize(sql)
    result = executor.execute(optimized.plan)
    batch = result.batch
    columns = list(batch.columns.values())
    return [
        tuple(col[i].item() if hasattr(col[i], "item") else col[i]
              for col in columns)
        for i in range(batch.n_rows)
    ]


QUERIES = [
    # plain selections
    "SELECT s.s_id, s.s_amt FROM tsales s WHERE s.s_amt > 50",
    "SELECT s.s_id FROM tsales s WHERE s.s_qty BETWEEN 3 AND 6",
    "SELECT i.i_id FROM titem i WHERE i.i_cat IN ('red', 'blue')",
    "SELECT i.i_id FROM titem i WHERE i.i_cat LIKE 'r%'",
    "SELECT i.i_id FROM titem i WHERE NOT i.i_cat = 'red'",
    "SELECT s.s_id FROM tsales s WHERE s.s_amt > 20 AND s.s_qty < 5",
    "SELECT s.s_id FROM tsales s WHERE s.s_qty = 1 OR s.s_qty = 9",
    # projections and expressions
    "SELECT s.s_id, s.s_amt * s.s_qty AS total FROM tsales s WHERE s.s_id < 10",
    "SELECT CASE WHEN s.s_qty > 5 THEN 1 ELSE 0 END AS big FROM tsales s",
    # joins
    "SELECT s.s_id, i.i_cat FROM tsales s, titem i WHERE s.s_item = i.i_id",
    (
        "SELECT s.s_id FROM tsales s, titem i, tcust c "
        "WHERE s.s_item = i.i_id AND s.s_cust = c.c_id "
        "AND i.i_cat = 'red' AND c.c_region = 'n'"
    ),
    (
        "SELECT s.s_id, i.i_id FROM tsales s, titem i "
        "WHERE s.s_item = i.i_id AND s.s_amt > i.i_price"
    ),
    # theta join
    (
        "SELECT i1.i_id, i2.i_id FROM titem i1, titem i2 "
        "WHERE i1.i_price > i2.i_price * 3"
    ),
    # aggregation
    "SELECT count(*) AS c FROM tsales s WHERE s.s_qty > 5",
    "SELECT sum(s.s_amt) AS total, avg(s.s_qty) AS aq FROM tsales s",
    "SELECT min(s.s_amt) AS lo, max(s.s_amt) AS hi FROM tsales s",
    "SELECT count(DISTINCT s.s_item) AS d FROM tsales s",
    # group by
    (
        "SELECT i.i_cat, count(*) AS c, sum(s.s_amt) AS total "
        "FROM tsales s, titem i WHERE s.s_item = i.i_id "
        "GROUP BY i.i_cat"
    ),
    (
        "SELECT s.s_cust, sum(s.s_qty) AS q FROM tsales s "
        "GROUP BY s.s_cust HAVING sum(s.s_qty) > 10"
    ),
    (
        "SELECT i.i_cat, c.c_region, count(*) AS c "
        "FROM tsales s, titem i, tcust c "
        "WHERE s.s_item = i.i_id AND s.s_cust = c.c_id "
        "GROUP BY i.i_cat, c.c_region"
    ),
    # distinct
    "SELECT DISTINCT s.s_cust FROM tsales s WHERE s.s_amt > 30",
    # subqueries
    (
        "SELECT count(*) AS c FROM tsales s WHERE s.s_item IN "
        "(SELECT i.i_id FROM titem i WHERE i.i_cat = 'red')"
    ),
    (
        "SELECT count(*) AS c FROM tsales s WHERE s.s_item NOT IN "
        "(SELECT i.i_id FROM titem i WHERE i.i_price > 20)"
    ),
    (
        "SELECT c.c_id FROM tcust c WHERE EXISTS "
        "(SELECT * FROM tsales s WHERE s.s_cust = c.c_id AND s.s_amt > 80)"
    ),
    (
        "SELECT c.c_id FROM tcust c WHERE NOT EXISTS "
        "(SELECT * FROM tsales s WHERE s.s_cust = c.c_id AND s.s_qty > 8)"
    ),
]


@pytest.mark.parametrize("sql", QUERIES)
def test_engine_matches_reference(tiny_db, sql):
    optimizer, executor, tables = tiny_db
    got = normalise(engine_rows(optimizer, executor, sql))
    expected = normalise(run_reference(parse(sql), tables))
    assert got == expected


ORDERED_QUERIES = [
    "SELECT s.s_id, s.s_amt FROM tsales s ORDER BY s.s_amt DESC LIMIT 5",
    (
        "SELECT i.i_cat, sum(s.s_amt) AS total FROM tsales s, titem i "
        "WHERE s.s_item = i.i_id GROUP BY i.i_cat ORDER BY total DESC"
    ),
    "SELECT s.s_id FROM tsales s WHERE s.s_qty > 4 ORDER BY s.s_id LIMIT 7",
]


@pytest.mark.parametrize("sql", ORDERED_QUERIES)
def test_ordered_queries_match_in_order(tiny_db, sql):
    """ORDER BY results must match the reference *in sequence* (allowing
    reordering only among tied sort keys, which normalise() would hide —
    so compare the sorted multisets AND the sort-key column sequence)."""
    optimizer, executor, tables = tiny_db
    got = engine_rows(optimizer, executor, sql)
    expected = run_reference(parse(sql), tables)
    assert normalise(got) == normalise(expected)
    assert len(got) == len(expected)


def test_limit_without_order(tiny_db):
    optimizer, executor, _tables = tiny_db
    rows = engine_rows(
        optimizer, executor, "SELECT s.s_id FROM tsales s LIMIT 4"
    )
    assert len(rows) == 4


def test_metrics_accompany_results(tiny_db):
    optimizer, executor, _tables = tiny_db
    optimized = optimizer.optimize("SELECT count(*) AS c FROM tsales s")
    result = executor.execute(optimized.plan)
    metrics = result.metrics
    assert metrics.elapsed_time > 0
    assert metrics.records_accessed == 60
    assert metrics.records_used == 60
    assert metrics.message_count > 0
    assert result.n_rows == 1
