"""MapReduce job performance prediction (the paper's Section VIII vision).

"Our long-term vision is to use domain-specific models ... to answer
what-if questions about workload performance on a variety of complex
systems. Only the feature vectors need to be customized for each system.
We are currently adapting our methodology to predict the performance of
map-reduce jobs."

This example does exactly that: the *identical* KCCAPredictor used for
SQL queries is trained on measured MapReduce jobs — only the feature
vector (job configuration + input-split arithmetic) and the metric vector
(map output, shuffle bytes, HDFS traffic, spills) are domain-specific.

Run with::

    python examples/mapreduce_prediction.py
"""

import numpy as np

from repro.core.metrics import predictive_risk
from repro.core.predictor import KCCAPredictor
from repro.mapreduce import (
    JOB_METRIC_NAMES,
    default_cluster,
    generate_jobs,
    job_feature_vector,
    simulate_job,
)
from repro.rng import child_generator


def main() -> None:
    cluster = default_cluster(16)
    print(f"simulating a training workload on {cluster.name} ...")
    jobs = generate_jobs(500, seed=19)
    features = np.vstack([job_feature_vector(j, cluster) for j in jobs])
    metrics = np.vstack(
        [
            simulate_job(j, cluster, rng=child_generator(1, j.job_id))
            .as_vector()
            for j in jobs
        ]
    )

    n_train = 420
    model = KCCAPredictor().fit(features[:n_train], metrics[:n_train])
    predicted = model.predict(features[n_train:])
    actual = metrics[n_train:]

    print(f"\ntrained on {n_train} jobs, testing on {len(actual)}:\n")
    print(f"{'metric':<22}{'predictive risk':>16}")
    print("-" * 38)
    for i, name in enumerate(JOB_METRIC_NAMES):
        print(f"{name:<22}{predictive_risk(predicted[:, i], actual[:, i]):>16.3f}")

    print("\nsample forecasts (elapsed time):")
    print(f"{'job':<24}{'type':<12}{'predicted':>12}{'actual':>12}")
    print("-" * 60)
    for offset in range(8):
        index = n_train + offset
        job = jobs[index]
        print(
            f"{job.job_id:<24}{job.job_type:<12}"
            f"{predicted[offset, 0]:>11.0f}s{actual[offset, 0]:>11.0f}s"
        )

    print(
        "\nSame model, same kernels, same neighbour machinery as the SQL "
        "predictor — only the feature and metric vectors changed."
    )


if __name__ == "__main__":
    main()
