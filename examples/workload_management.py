"""Workload management: admission control with pre-execution predictions.

The paper's first motivating use case (Section I): every database vendor
struggles with unexpectedly long-running queries.  With accurate
pre-execution predictions, long-running queries can be rejected or
deferred to a maintenance window *before* they start consuming resources,
instead of being killed hours in.

This example implements a simple admission controller:

* queries predicted to finish within the SLA run immediately,
* predicted golf balls are queued for the off-peak window,
* predicted bowling balls (or low-confidence anomalies) need operator
  approval.

It then audits the decisions against the queries' actual runtimes.

The model is trained **once**, saved as a versioned artifact, and the
controller serves from a reloaded copy — the paper's train-once /
serve-many deployment — scoring the whole incoming batch in one
:meth:`~repro.api.QueryPerformancePredictor.forecast_many` pass.

Run with::

    python examples/workload_management.py
"""

import tempfile
from dataclasses import dataclass
from pathlib import Path

from repro.api import QueryPerformancePredictor
from repro.workloads.categories import categorize
from repro.workloads.generator import generate_pool

SLA_SECONDS = 180.0  # run immediately if predicted under 3 minutes
DEFER_SECONDS = 1_800.0  # defer to off-peak if under 30 minutes


@dataclass
class Decision:
    query_id: str
    action: str
    predicted_s: float
    actual_s: float

    @property
    def actual_action(self) -> str:
        return _action_for(self.actual_s)


def _action_for(elapsed_s: float) -> str:
    if elapsed_s < SLA_SECONDS:
        return "RUN"
    if elapsed_s < DEFER_SECONDS:
        return "DEFER"
    return "ESCALATE"


def main() -> None:
    print("Training the admission controller's model (once)...")
    trained = QueryPerformancePredictor.train_on_tpcds(
        n_queries=300, scale_factor=0.2, seed=11, problem_fraction=0.35
    )
    artifact = Path(tempfile.gettempdir()) / "admission_model.npz"
    trained.save(artifact)
    print(f"Saved artifact: {artifact}")

    # A serving process would start here: no retraining, just load.
    predictor = QueryPerformancePredictor.load(artifact)

    print("Scoring an incoming workload of 40 queries in one batch...\n")
    incoming = generate_pool(40, seed=99, problem_fraction=0.35)
    forecasts = predictor.forecast_many([query.sql for query in incoming])
    decisions = []
    for query, forecast in zip(incoming, forecasts):
        predicted = forecast.metrics.elapsed_time
        action = _action_for(predicted)
        if forecast.confidence.anomalous:
            action = "ESCALATE"  # never trust a far-from-training query
        actual = predictor.measure(query.sql).elapsed_time
        decisions.append(
            Decision(query.query_id, action, predicted, actual)
        )

    print(f"{'query':<34}{'decision':>10}{'predicted':>12}{'actual':>12}")
    print("-" * 68)
    for decision in decisions:
        flag = "" if decision.action == decision.actual_action else "  <-- miss"
        print(
            f"{decision.query_id:<34}{decision.action:>10}"
            f"{decision.predicted_s:>11.1f}s{decision.actual_s:>11.1f}s{flag}"
        )

    correct = sum(d.action == d.actual_action for d in decisions)
    print(f"\ncorrect admission decisions: {correct}/{len(decisions)}")

    missed_long = sum(
        1
        for d in decisions
        if d.action == "RUN" and categorize(d.actual_s).value != "feather"
    )
    print(f"long-running queries admitted by mistake: {missed_long}")


if __name__ == "__main__":
    main()
