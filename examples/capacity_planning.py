"""Capacity planning: what-if modelling across system configurations.

The paper's second and third use cases (Section I): how big a system does
a workload need, and is an upgrade worth it?  Per the paper's vendor-side
vision (Figure 1), :func:`repro.sizing.size_system` trains one predictive
model per candidate configuration of the 32-node production system
(4 / 8 / 16 / 32 CPUs), then forecasts a customer workload's total
runtime and resource footprint on each — without running the workload on
any of them.

Each candidate's trained model is saved as a versioned artifact
(``artifact_dir=``); re-running the example loads the saved models
instead of retraining, so what-if analysis over the same candidates is
instant after the first run.

Run with::

    python examples/capacity_planning.py
"""

import tempfile
from pathlib import Path

from repro.engine import Executor
from repro.engine.system import production_32node
from repro.optimizer import Optimizer
from repro.sizing import size_system
from repro.workloads.generator import generate_pool
from repro.workloads.templates import tpcds_templates
from repro.workloads.tpcds import build_tpcds_catalog

DEADLINE_S = 900.0  # the batch window the workload must fit into


def main() -> None:
    catalog = build_tpcds_catalog(scale_factor=1.0, seed=21)
    training = generate_pool(140, seed=5, templates=tpcds_templates())
    workload = [
        q.sql for q in generate_pool(30, seed=77, templates=tpcds_templates())
    ]
    candidates = [production_32node(n) for n in (4, 8, 16, 32)]

    artifact_dir = Path(tempfile.gettempdir()) / "capacity_models"
    print(
        "Training one model per candidate configuration "
        f"(artifacts cached in {artifact_dir})...\n"
    )
    result = size_system(
        catalog,
        candidates,
        training,
        workload,
        deadline_s=DEADLINE_S,
        artifact_dir=artifact_dir,
    )

    header = (
        f"{'config':<28}{'pred total':>12}{'actual total':>14}"
        f"{'disk I/Os':>12}{'fits window':>13}"
    )
    print(header)
    print("-" * len(header))
    for forecast in result.forecasts:
        # Audit the prediction by actually running the workload (a real
        # customer could not do this — that's why predictions matter).
        optimizer = Optimizer(catalog, forecast.config)
        executor = Executor(catalog, forecast.config)
        actual_total = sum(
            executor.execute(optimizer.optimize(sql).plan).metrics.elapsed_time
            for sql in workload
        )
        fits = "yes" if forecast.fits_deadline else "NO"
        print(
            f"{forecast.config.name:<28}{forecast.total_elapsed_s:>11.0f}s"
            f"{actual_total:>13.0f}s{forecast.total_disk_ios:>12,}{fits:>13}"
        )

    if result.recommended is not None:
        print(
            f"\nrecommended purchase: {result.recommended.config.name} "
            f"(cheapest configuration predicted to fit the "
            f"{DEADLINE_S:.0f}s window)"
        )
    else:
        print("\nno candidate fits the window — buy more than 32 CPUs")
    print(
        "The disk-I/O column shows the 4-CPU configuration thrashing (its "
        "memory cannot cache the fact tables) — the same behaviour the "
        "paper reports for its 32-node system (Section VII-B)."
    )


if __name__ == "__main__":
    main()
