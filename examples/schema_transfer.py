"""Schema transfer: predict a brand-new customer's workload (Experiment 4).

The paper's sales scenario: a prospective customer has their own database
and queries, but the vendor's models were trained on TPC-DS.  Because the
query-plan feature vector is *schema-independent* (operator counts and
cardinality sums), a model trained on one schema can score plans from
another.  The paper found the one-model predictor badly over-predicts in
this setting while the two-step model fares better — this example shows
both.

Run with::

    python examples/schema_transfer.py
"""

import numpy as np

from repro.core.metrics import within_factor_fraction
from repro.core.predictor import KCCAPredictor
from repro.core.two_step import TwoStepPredictor
from repro.engine.system import research_4node
from repro.experiments.corpus import build_corpus
from repro.workloads.customer import build_customer_catalog, customer_templates
from repro.workloads.generator import generate_pool
from repro.workloads.tpcds import build_tpcds_catalog


def main() -> None:
    config = research_4node()

    print("Measuring the vendor's TPC-DS training workload...")
    tpcds = build_tpcds_catalog(scale_factor=0.2, seed=42)
    train_pool = generate_pool(300, seed=3, problem_fraction=0.3)
    train = build_corpus(tpcds, config, train_pool)

    print("Measuring the customer's (different-schema) workload...")
    customer = build_customer_catalog(seed=99, scale=0.08)
    test_pool = generate_pool(40, seed=17, templates=customer_templates())
    test = build_corpus(customer, config, test_pool)

    features_train = train.feature_matrix()
    performance_train = train.performance_matrix()
    features_test = test.feature_matrix()
    actual = test.elapsed_times()

    one_model = KCCAPredictor().fit(features_train, performance_train)
    two_step = TwoStepPredictor().fit(features_train, performance_train)

    one_predicted = one_model.predict(features_test)[:, 0]
    two_predicted = two_step.predict(features_test)[:, 0]

    print(f"\n{'query':<34}{'actual':>9}{'one-model':>11}{'two-step':>10}")
    print("-" * 64)
    for i, query in enumerate(test.queries[:15]):
        print(
            f"{query.template:<34}{actual[i]:>8.2f}s"
            f"{one_predicted[i]:>10.2f}s{two_predicted[i]:>9.2f}s"
        )

    print("\nsummary over the full customer test set:")
    for label, predicted in (
        ("one-model", one_predicted),
        ("two-step ", two_predicted),
    ):
        ratio = np.median(
            np.maximum(predicted, 1e-9) / np.maximum(actual, 1e-9)
        )
        in10 = within_factor_fraction(predicted, actual, 10.0)
        print(
            f"  {label}: median predicted/actual ratio = {ratio:7.2f}x, "
            f"within 10x of actual = {in10:.0%}"
        )
    print(
        "\nThe paper's Experiment 4 found one-model predictions one to "
        "three orders of magnitude too long for these mini-feathers "
        "(every customer query gets dragged toward its longer TPC-DS "
        "neighbours), with the two-step route noticeably closer — compare "
        "the two median ratios above."
    )


if __name__ == "__main__":
    main()
