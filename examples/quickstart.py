"""Quickstart: train a predictor and forecast a query before running it.

Builds a small TPC-DS-like warehouse, trains the paper's KCCA model on a
measured workload, then predicts all six performance metrics of unseen
queries — and compares against what actually happens when they run.

Run with::

    python examples/quickstart.py
"""

from repro.api import QueryPerformancePredictor


def main() -> None:
    print("Training on a measured TPC-DS-style workload (takes ~30s)...")
    predictor = QueryPerformancePredictor.train_on_tpcds(
        n_queries=250, scale_factor=0.2, seed=7
    )
    print(f"trained on {len(predictor.training_corpus)} executed queries\n")

    queries = {
        "monthly category report": (
            "SELECT i.i_category, sum(ss.ss_sales_price) AS revenue, "
            "count(*) AS cnt "
            "FROM store_sales ss, item i, date_dim d "
            "WHERE ss.ss_item_sk = i.i_item_sk "
            "AND ss.ss_sold_date_sk = d.d_date_sk "
            "AND d.d_year = 2000 AND d.d_moy = 12 "
            "GROUP BY i.i_category ORDER BY revenue DESC"
        ),
        "big-spender hunt": (
            "SELECT ss.ss_customer_sk, sum(ss.ss_net_profit) AS profit "
            "FROM store_sales ss, date_dim d "
            "WHERE ss.ss_sold_date_sk = d.d_date_sk AND d.d_year = 2001 "
            "GROUP BY ss.ss_customer_sk ORDER BY profit DESC LIMIT 25"
        ),
        "cross-channel problem query": (
            "SELECT i.i_manufact_id, count(*) AS cnt "
            "FROM store_sales ss, catalog_sales cs, item i "
            "WHERE ss.ss_item_sk = i.i_item_sk "
            "AND cs.cs_item_sk = i.i_item_sk "
            "GROUP BY i.i_manufact_id ORDER BY cnt DESC"
        ),
    }

    for name, sql in queries.items():
        print(f"=== {name} ===")
        print(predictor.explain(sql))
        actual = predictor.measure(sql)
        predicted = predictor.predict(sql)
        error = abs(predicted.elapsed_time - actual.elapsed_time)
        print(
            f"actual elapsed time    : {actual.elapsed_time:.2f}s "
            f"(prediction off by {error:.2f}s)"
        )
        print()


if __name__ == "__main__":
    main()
