"""Spec-driven workloads: train on any declared scenario, not just TPC-DS.

Workload specs (``specs/*.yaml``, see docs/WORKLOADS.md) declare the
tables, parameterised query templates and family mix of a scenario; the
same predictor trains on any of them with one call.  This example trains
on the OLTP spec, forecasts a fresh sample from it, and then asks the
harder question the spec system exists to answer: how does prediction
accuracy differ *per workload family* — point lookups versus range
scans, rollups versus pivots?

Run with::

    python examples/workload_specs.py
"""

from repro.api import QueryPerformancePredictor
from repro.experiments.experiments import workload_family_accuracy
from repro.workloads.spec import describe_workload


def main() -> None:
    print(describe_workload("oltp"))
    print()

    # One call: resolve the spec, build its catalog, generate + execute a
    # training pool, fit the pipeline.
    predictor = QueryPerformancePredictor.train_on_workload(
        "oltp", n_queries=80, scale=0.05, seed=7
    )

    print("forecasts for a fresh sample from the same spec:")
    for instance, forecast in predictor.forecast_workload(
        "oltp", n_queries=5, seed=101
    ):
        print(
            f"  {instance.query_id:<28} [{instance.family}] "
            f"predicted {forecast.metrics.elapsed_time * 1e3:7.2f} ms"
        )
    print()

    # The paper's within-20% figure, decomposed by family: train and
    # evaluate each spec end to end on a family-stratified split.
    for workload in ("oltp", "analytics"):
        result = workload_family_accuracy(
            workload, n_queries=80, scale=0.05, seed=29
        )
        print(
            f"{workload}: {result.within_20pct_elapsed:.0%} of "
            f"{result.n_test} held-out queries within 20% (elapsed time)"
        )
        for family, stats in result.families.items():
            frac = stats["within_tolerance"]["elapsed_time"]
            print(f"  {family:<12} n={stats['n']:<3} within-20% {frac:.0%}")


if __name__ == "__main__":
    main()
